// Package codegen lowers IR functions to machine code for the isa target:
// instruction selection onto virtual registers, register allocation
// (package regalloc, with the §4.4 idempotence constraint when compiling
// an idempotent binary), spill/call/param expansion, and module linking.
//
// Region boundaries become MARK instructions — the machine-level
// equivalent of the paper's "mov rp, {addr}" (§6.3): one issue slot per
// boundary, at which the simulator commits buffered stores and records
// the restart point.
package codegen

import (
	"fmt"

	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/isa"
	"idemproc/internal/regalloc"
	"idemproc/internal/ssa"
)

// Options configure compilation of one function.
type Options struct {
	// Cuts, when non-nil, selects the idempotent compilation: MARK
	// instructions are emitted at each cut and region live-ins are
	// preserved by the allocator. Nil compiles the conventional binary.
	Cuts map[*ir.Value]bool
	// RelaxedAlloc emits the MARKs but skips the §4.4 allocation
	// constraint — the binary is functionally correct but NOT safely
	// re-executable. Only the regalloc ablation benchmark uses this, to
	// isolate the constraint's cost.
	RelaxedAlloc bool
}

// Compiled is the machine code of one function. Branch targets in Code
// are function-local instruction indices; Link rebases them.
type Compiled struct {
	Name string
	Code []isa.Instr
	// Marks counts region boundaries.
	Marks int
	// RepairCuts counts extra cuts inserted by the live-in repair loop.
	RepairCuts int
	// FrameWords is the stack frame size.
	FrameWords int
	// SpillLoads/SpillStores are static counts, for the Fig. 10 analysis.
	SpillLoads, SpillStores int
}

var opMap = map[ir.Op]isa.Op{
	ir.OpAdd: isa.ADD, ir.OpSub: isa.SUB, ir.OpMul: isa.MUL, ir.OpDiv: isa.DIV,
	ir.OpRem: isa.REM, ir.OpAnd: isa.AND, ir.OpOr: isa.ORR, ir.OpXor: isa.EOR,
	ir.OpShl: isa.LSL, ir.OpShr: isa.ASR,
	ir.OpNeg: isa.NEG, ir.OpNot: isa.MVN,
	ir.OpFAdd: isa.FADD, ir.OpFSub: isa.FSUB, ir.OpFMul: isa.FMUL, ir.OpFDiv: isa.FDIV,
	ir.OpFNeg: isa.FNEG,
	ir.OpEq:   isa.SEQ, ir.OpNe: isa.SNE, ir.OpLt: isa.SLT, ir.OpLe: isa.SLE,
	ir.OpGt: isa.SGT, ir.OpGe: isa.SGE,
	ir.OpFEq: isa.FSEQ, ir.OpFNe: isa.FSNE, ir.OpFLt: isa.FSLT, ir.OpFLe: isa.FSLE,
	ir.OpFGt: isa.FSGT, ir.OpFGe: isa.FSGE,
	ir.OpIToF: isa.ITOF, ir.OpFToI: isa.FTOI,
}

// Compile lowers f. f is mutated (SSA destruction); callers compile a
// dedicated copy. globalBase maps global names to absolute addresses.
//
// For idempotent builds, compilation may iterate: if the allocator
// reports a region live-in redefined inside its region (a loop-carried φ
// arrangement our allocator cannot double-buffer, see regalloc), an extra
// cut is inserted before the offending definition — a strictly finer
// region decomposition, which preserves antidependence separation — and
// selection re-runs. This converges because every retry adds a cut at a
// previously uncut instruction.
func Compile(f *ir.Func, globalBase map[string]int64, opts Options) (*Compiled, error) {
	ssa.Destruct(f)
	f.Renumber()

	cuts := opts.Cuts
	repairs := 0
	for {
		vf, posToIR, err := buildVF(f, cuts, globalBase)
		if err != nil {
			return nil, err
		}
		as, err := regalloc.Allocate(vf, regalloc.Options{Idempotent: cuts != nil && !opts.RelaxedAlloc})
		if viol, ok := err.(*regalloc.LiveInViolation); ok {
			v := posToIR[viol.DefPos]
			if v == nil || cuts[v] {
				return nil, fmt.Errorf("codegen: unrepairable %v", viol)
			}
			cuts[v] = true
			repairs++
			if repairs > 256 {
				return nil, fmt.Errorf("codegen: repair loop diverged in @%s", f.Name)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		code, marks, err := expand(vf, as)
		if err != nil {
			return nil, err
		}
		return &Compiled{
			Name:        f.Name,
			Code:        code,
			Marks:       marks,
			RepairCuts:  repairs,
			FrameWords:  1 + vf.AllocaSlots + as.FrameSlots,
			SpillLoads:  as.SpillLoads,
			SpillStores: as.SpillStores,
		}, nil
	}
}

// buildVF runs instruction selection over the (destructed) function and
// registers region metadata. posToIR maps each virtual-code position back
// to the IR instruction it implements (nil for marks).
func buildVF(f *ir.Func, cuts map[*ir.Value]bool, globalBase map[string]int64) (*regalloc.VFunc, []*ir.Value, error) {
	vf := &regalloc.VFunc{Name: f.Name}
	vregOf := map[string]regalloc.VReg{}
	var floatReg []bool
	newVReg := func(float bool) regalloc.VReg {
		v := regalloc.VReg(len(floatReg))
		floatReg = append(floatReg, float)
		return v
	}
	vregFor := func(val *ir.Value) regalloc.VReg {
		if v, ok := vregOf[val.Name]; ok {
			return v
		}
		v := newVReg(val.Type == ir.F64)
		vregOf[val.Name] = v
		return v
	}

	// Assign alloca offsets.
	allocaOff := map[*ir.Value]int64{}
	var allocaWords int64
	for _, v := range f.Entry().Instrs {
		if v.Op == ir.OpAlloca {
			allocaOff[v] = allocaWords
			allocaWords += v.ConstInt
		}
	}

	// Selection. markPosOf records each cut's KMark (block, index) so
	// regions can be registered after positions are final.
	type bi struct{ b, i int }
	markPosOf := map[*ir.Value]bi{}
	valStart := map[*ir.Value]bi{}
	valEnd := map[*ir.Value]bi{}
	entryMark := cuts != nil

	// The entry region's mark goes after the parameter moves: the moves
	// re-read the argument registers, so restarting before them would
	// require the caller's registers intact; restarting after them only
	// requires the param vregs, which the §4.4 constraint preserves.
	entryMarkAt := bi{-1, -1}
	for bIdx, blk := range f.Blocks {
		vb := regalloc.VBlock{}
		emit := func(in regalloc.VInstr) {
			vb.Instrs = append(vb.Instrs, in)
		}
		for _, v := range blk.Instrs {
			if bIdx == 0 && entryMark && v.Op != ir.OpParam && entryMarkAt.b < 0 {
				entryMarkAt = bi{0, len(vb.Instrs)}
				emit(regalloc.VInstr{Kind: regalloc.KMark, Rd: regalloc.NoVReg, Rs1: regalloc.NoVReg, Rs2: regalloc.NoVReg})
			}
			if cuts[v] {
				markPosOf[v] = bi{bIdx, len(vb.Instrs)}
				emit(regalloc.VInstr{Kind: regalloc.KMark, Rd: regalloc.NoVReg, Rs1: regalloc.NoVReg, Rs2: regalloc.NoVReg})
			}
			valStart[v] = bi{bIdx, len(vb.Instrs)}
			if err := selectInstr(f, v, &vb, vregFor, newVReg, allocaOff, globalBase); err != nil {
				return nil, nil, err
			}
			valEnd[v] = bi{bIdx, len(vb.Instrs)}
		}
		for _, s := range blk.Succs {
			vb.Succs = append(vb.Succs, s.Index)
		}
		vf.Blocks = append(vf.Blocks, vb)
	}
	vf.NumVRegs = len(floatReg)
	vf.FloatReg = floatReg
	vf.AllocaSlots = int(allocaWords)
	for _, p := range f.Params {
		vf.Params = append(vf.Params, vregOf[p.Name])
	}

	// Global positions and the position→IR map.
	blockStart := make([]int, len(vf.Blocks))
	pos := 0
	for b := range vf.Blocks {
		blockStart[b] = pos
		pos += len(vf.Blocks[b].Instrs)
	}
	toPos := func(p bi) int { return blockStart[p.b] + p.i }
	posToIR := make([]*ir.Value, pos)
	for _, blk := range f.Blocks {
		for _, v := range blk.Instrs {
			s, e := valStart[v], valEnd[v]
			for q := toPos(s); q < toPos(e); q++ {
				posToIR[q] = v
			}
		}
	}

	// Register regions with the allocator (idempotent mode only).
	if cuts != nil {
		regions := core.Materialize(f, cuts)
		for _, r := range regions {
			reg := regalloc.Region{}
			if mp, ok := markPosOf[r.Header]; ok {
				reg.Header = toPos(mp)
			} else {
				reg.Header = toPos(entryMarkAt) // entry region's mark
			}
			for _, v := range r.Instrs {
				s, e := valStart[v], valEnd[v]
				for q := toPos(s); q < toPos(e); q++ {
					reg.Positions = append(reg.Positions, q)
				}
			}
			vf.Regions = append(vf.Regions, reg)
		}
	}
	return vf, posToIR, nil
}

// selectInstr emits virtual code for one IR instruction.
func selectInstr(f *ir.Func, v *ir.Value, vb *regalloc.VBlock,
	vregFor func(*ir.Value) regalloc.VReg, newVReg func(bool) regalloc.VReg,
	allocaOff map[*ir.Value]int64, globalBase map[string]int64) error {

	emit := func(in regalloc.VInstr) { vb.Instrs = append(vb.Instrs, in) }
	no := regalloc.NoVReg

	switch v.Op {
	case ir.OpParam:
		emit(regalloc.VInstr{Kind: regalloc.KParam, Rd: vregFor(v), Rs1: no, Rs2: no, Imm: v.ConstInt})
	case ir.OpConst:
		if v.Type == ir.F64 {
			emit(regalloc.VInstr{Op: isa.FMOVI, Rd: vregFor(v), Rs1: no, Rs2: no, FImm: v.ConstFloat})
		} else {
			emit(regalloc.VInstr{Op: isa.MOVI, Rd: vregFor(v), Rs1: no, Rs2: no, Imm: v.ConstInt})
		}
	case ir.OpCopy:
		op := isa.MOV
		if v.Type == ir.F64 {
			op = isa.FMOV
		}
		emit(regalloc.VInstr{Op: op, Rd: vregFor(v), Rs1: vregFor(v.Args[0]), Rs2: no})
	case ir.OpAlloca:
		emit(regalloc.VInstr{Kind: regalloc.KAlloca, Rd: vregFor(v), Rs1: no, Rs2: no, Imm: allocaOff[v]})
	case ir.OpGlobal:
		base, ok := globalBase[v.Aux]
		if !ok {
			return fmt.Errorf("codegen: @%s references unknown global %q", f.Name, v.Aux)
		}
		emit(regalloc.VInstr{Op: isa.MOVI, Rd: vregFor(v), Rs1: no, Rs2: no, Imm: base})
	case ir.OpLoad:
		op := isa.LDR
		if v.Type == ir.F64 {
			op = isa.FLDR
		}
		emit(regalloc.VInstr{Op: op, Rd: vregFor(v), Rs1: vregFor(v.Args[0]), Rs2: no})
	case ir.OpStore:
		op := isa.STR
		if v.Args[1].Type == ir.F64 {
			op = isa.FSTR
		}
		emit(regalloc.VInstr{Op: op, Rd: no, Rs1: vregFor(v.Args[0]), Rs2: vregFor(v.Args[1])})
	case ir.OpCall:
		in := regalloc.VInstr{Kind: regalloc.KCall, Rd: no, Rs1: no, Rs2: no, Sym: v.Aux}
		for _, a := range v.Args {
			in.Args = append(in.Args, vregFor(a))
		}
		if v.Type != ir.Void {
			in.Rd = vregFor(v)
		}
		emit(in)
	case ir.OpBr:
		emit(regalloc.VInstr{Op: isa.B, Rd: no, Rs1: no, Rs2: no, Target: v.Block.Succs[0].Index})
	case ir.OpCondBr:
		emit(regalloc.VInstr{Op: isa.CBNZ, Rd: no, Rs1: vregFor(v.Args[0]), Rs2: no,
			Target: v.Block.Succs[0].Index, Target2: v.Block.Succs[1].Index})
	case ir.OpRet:
		in := regalloc.VInstr{Kind: regalloc.KRet, Rd: no, Rs1: no, Rs2: no}
		if len(v.Args) > 0 {
			in.Rs1 = vregFor(v.Args[0])
		}
		emit(in)
	case ir.OpPhi:
		return fmt.Errorf("codegen: φ survived SSA destruction: %s", v.LongString())
	default:
		op, ok := opMap[v.Op]
		if !ok {
			return fmt.Errorf("codegen: unhandled op %s", v.Op)
		}
		in := regalloc.VInstr{Op: op, Rd: vregFor(v), Rs1: vregFor(v.Args[0]), Rs2: no}
		if len(v.Args) > 1 {
			in.Rs2 = vregFor(v.Args[1])
		}
		emit(in)
	}
	return nil
}

// DebugCompile runs selection and allocation for f (already constructed:
// cuts given) and returns the regalloc.DebugDump — a diagnostic entry
// point used when investigating §4.4 behaviour.
func DebugCompile(f *ir.Func, globalBase map[string]int64, cuts map[*ir.Value]bool) (string, error) {
	ssa.Destruct(f)
	f.Renumber()
	for {
		vf, posToIR, err := buildVF(f, cuts, globalBase)
		if err != nil {
			return "", err
		}
		as, err := regalloc.Allocate(vf, regalloc.Options{Idempotent: cuts != nil})
		if viol, ok := err.(*regalloc.LiveInViolation); ok {
			v := posToIR[viol.DefPos]
			if v == nil || cuts[v] {
				return "", fmt.Errorf("unrepairable %v", viol)
			}
			cuts[v] = true
			continue
		}
		if err != nil {
			return "", err
		}
		return regalloc.DebugDump(vf, as), nil
	}
}
