package codegen

import (
	"fmt"

	"idemproc/internal/alias"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/redelim"
	"idemproc/internal/ssa"
)

// BuildStats aggregates per-module compilation statistics. It is plain
// data — no IR pointers — so a BuildStats round-trips losslessly through
// the binary artifact codec (serialize.go) alongside its Program; the
// disk tier of internal/buildcache depends on that to serve compile
// reports from persisted artifacts byte-identically.
type BuildStats struct {
	// Construction holds each function's region-construction summary
	// (idempotent builds only).
	Construction map[string]*FuncConstruction
	// Marks is the total number of region boundaries.
	Marks int
	// SpillLoads/SpillStores are static spill-code counts.
	SpillLoads, SpillStores int
	// StaticInstrs is the linked program size.
	StaticInstrs int
	// FrameWords is the summed stack frame size over all functions (the
	// paper: "our compiler does not grow the size of the stack
	// significantly").
	FrameWords int
}

// FuncConstruction is one function's §4 region-construction outcome in
// the plain-data form reports and experiment tables consume. Unlike
// core.Result it carries no *ir.Value or *ir.Func references: the
// antidependences are rendered to their textual form at build time, so
// the summary survives serialization and outlives the (mutated) IR.
type FuncConstruction struct {
	// Stats summarizes the construction (see core.Stats).
	Stats core.Stats
	// Cuts is the total number of region cuts placed, including any extra
	// cuts the §4.4 live-in repair loop added during compilation.
	Cuts int
	// Antideps are the memory antidependences the construction cut.
	Antideps []AntidepInfo
}

// AntidepInfo is one cut clobber antidependence, with the read and write
// rendered via ir.Value.LongString.
type AntidepInfo struct {
	Read, Write string
	MustAlias   bool
}

// summarizeConstruction flattens a core.Result. Called after the
// function is fully compiled so Cuts includes repair-loop additions
// (codegen.Compile grows the cut set in place).
func summarizeConstruction(res *core.Result) *FuncConstruction {
	fc := &FuncConstruction{Stats: res.Stats, Cuts: len(res.Cuts)}
	for _, d := range res.Antideps {
		fc.Antideps = append(fc.Antideps, AntidepInfo{
			Read:      d.Read.LongString(),
			Write:     d.Write.LongString(),
			MustAlias: d.MustAliasPair,
		})
	}
	return fc
}

// CompileModule lowers every function of m and links an executable whose
// stub calls main. When idem is true, each function first goes through
// the §4 region construction and is compiled with MARKs and the §4.4
// allocation constraint; otherwise the conventional optimizing pipeline
// runs (the paper's "original binary": same SSA construction and
// redundancy elimination, unconstrained allocation).
//
// m is mutated; callers who need the original keep their own copy.
func CompileModule(m *ir.Module, main string, memWords int, idem bool, opts core.Options) (*Program, *BuildStats, error) {
	return CompileModuleOpts(m, main, memWords, ModuleOptions{Idempotent: idem, Core: opts})
}

// ModuleOptions parameterizes CompileModuleOpts beyond the common cases.
type ModuleOptions struct {
	// Idempotent runs the §4 region construction and emits MARKs.
	Idempotent bool
	// Core configures the region construction.
	Core core.Options
	// RelaxedAlloc skips the §4.4 allocation constraint (ablation only).
	RelaxedAlloc bool
	// PureCalls enables the inter-procedural pure-call extension: memory-
	// free functions are compiled without region marks and calls to them
	// do not split their caller's regions (they are simply re-executed
	// with the enclosing region on recovery).
	PureCalls bool
}

// CompileModuleOpts is CompileModule with full options.
func CompileModuleOpts(m *ir.Module, main string, memWords int, mo ModuleOptions) (*Program, *BuildStats, error) {
	idem := mo.Idempotent
	opts := mo.Core
	globalBase, _ := LayoutGlobals(m)
	st := &BuildStats{Construction: map[string]*FuncConstruction{}}
	if mo.PureCalls && idem {
		opts.PureFuncs = core.PureFunctions(m)
	}
	var funcs []*Compiled
	for _, f := range m.Funcs {
		var cuts map[*ir.Value]bool
		if idem && opts.PureFuncs[f.Name] {
			// Pure functions carry no marks: a fault inside one recovers
			// to the caller's region entry and re-executes the call.
			ssa.PromoteAllocas(f)
			ssa.Build(f)
			ssa.FoldConstants(f)
			if opts.RedElim {
				redelim.Run(f, alias.Compute(f))
				ssa.PropagateCopies(f)
				ssa.EliminateDeadValues(f)
			}
			c, err := Compile(f, globalBase, Options{})
			if err != nil {
				return nil, nil, fmt.Errorf("compile pure @%s: %w", f.Name, err)
			}
			st.SpillLoads += c.SpillLoads
			st.SpillStores += c.SpillStores
			st.FrameWords += c.FrameWords
			funcs = append(funcs, c)
			continue
		}
		var res *core.Result
		if idem {
			r, err := core.Construct(f, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("construct @%s: %w", f.Name, err)
			}
			res = r
			cuts = res.Cuts
		} else {
			// The conventional flow: same mid-end, no region machinery.
			ssa.PromoteAllocas(f)
			ssa.Build(f)
			ssa.FoldConstants(f)
			if opts.RedElim {
				redelim.Run(f, alias.Compute(f))
				ssa.PropagateCopies(f)
				ssa.EliminateDeadValues(f)
			}
		}
		c, err := Compile(f, globalBase, Options{Cuts: cuts, RelaxedAlloc: mo.RelaxedAlloc})
		if err != nil {
			return nil, nil, fmt.Errorf("compile @%s: %w", f.Name, err)
		}
		if res != nil {
			// Summarize after Compile so the repair loop's extra cuts are
			// counted (Compile grows res.Cuts in place).
			st.Construction[f.Name] = summarizeConstruction(res)
		}
		st.Marks += c.Marks
		st.SpillLoads += c.SpillLoads
		st.SpillStores += c.SpillStores
		st.FrameWords += c.FrameWords
		funcs = append(funcs, c)
	}
	p, err := Link(m, funcs, main, memWords)
	if err != nil {
		return nil, nil, err
	}
	st.StaticInstrs = len(p.Instrs)
	return p, st, nil
}
