package codegen

import (
	"fmt"

	"idemproc/internal/alias"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/redelim"
	"idemproc/internal/ssa"
)

// BuildStats aggregates per-module compilation statistics.
type BuildStats struct {
	// Construction holds each function's region-construction result
	// (idempotent builds only).
	Construction map[string]*core.Result
	// Marks is the total number of region boundaries.
	Marks int
	// SpillLoads/SpillStores are static spill-code counts.
	SpillLoads, SpillStores int
	// StaticInstrs is the linked program size.
	StaticInstrs int
	// FrameWords is the summed stack frame size over all functions (the
	// paper: "our compiler does not grow the size of the stack
	// significantly").
	FrameWords int
}

// CompileModule lowers every function of m and links an executable whose
// stub calls main. When idem is true, each function first goes through
// the §4 region construction and is compiled with MARKs and the §4.4
// allocation constraint; otherwise the conventional optimizing pipeline
// runs (the paper's "original binary": same SSA construction and
// redundancy elimination, unconstrained allocation).
//
// m is mutated; callers who need the original keep their own copy.
func CompileModule(m *ir.Module, main string, memWords int, idem bool, opts core.Options) (*Program, *BuildStats, error) {
	return CompileModuleOpts(m, main, memWords, ModuleOptions{Idempotent: idem, Core: opts})
}

// ModuleOptions parameterizes CompileModuleOpts beyond the common cases.
type ModuleOptions struct {
	// Idempotent runs the §4 region construction and emits MARKs.
	Idempotent bool
	// Core configures the region construction.
	Core core.Options
	// RelaxedAlloc skips the §4.4 allocation constraint (ablation only).
	RelaxedAlloc bool
	// PureCalls enables the inter-procedural pure-call extension: memory-
	// free functions are compiled without region marks and calls to them
	// do not split their caller's regions (they are simply re-executed
	// with the enclosing region on recovery).
	PureCalls bool
}

// CompileModuleOpts is CompileModule with full options.
func CompileModuleOpts(m *ir.Module, main string, memWords int, mo ModuleOptions) (*Program, *BuildStats, error) {
	idem := mo.Idempotent
	opts := mo.Core
	globalBase, _ := LayoutGlobals(m)
	st := &BuildStats{Construction: map[string]*core.Result{}}
	if mo.PureCalls && idem {
		opts.PureFuncs = core.PureFunctions(m)
	}
	var funcs []*Compiled
	for _, f := range m.Funcs {
		var cuts map[*ir.Value]bool
		if idem && opts.PureFuncs[f.Name] {
			// Pure functions carry no marks: a fault inside one recovers
			// to the caller's region entry and re-executes the call.
			ssa.PromoteAllocas(f)
			ssa.Build(f)
			ssa.FoldConstants(f)
			if opts.RedElim {
				redelim.Run(f, alias.Compute(f))
				ssa.PropagateCopies(f)
				ssa.EliminateDeadValues(f)
			}
			c, err := Compile(f, globalBase, Options{})
			if err != nil {
				return nil, nil, fmt.Errorf("compile pure @%s: %w", f.Name, err)
			}
			st.SpillLoads += c.SpillLoads
			st.SpillStores += c.SpillStores
			st.FrameWords += c.FrameWords
			funcs = append(funcs, c)
			continue
		}
		if idem {
			res, err := core.Construct(f, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("construct @%s: %w", f.Name, err)
			}
			st.Construction[f.Name] = res
			cuts = res.Cuts
		} else {
			// The conventional flow: same mid-end, no region machinery.
			ssa.PromoteAllocas(f)
			ssa.Build(f)
			ssa.FoldConstants(f)
			if opts.RedElim {
				redelim.Run(f, alias.Compute(f))
				ssa.PropagateCopies(f)
				ssa.EliminateDeadValues(f)
			}
		}
		c, err := Compile(f, globalBase, Options{Cuts: cuts, RelaxedAlloc: mo.RelaxedAlloc})
		if err != nil {
			return nil, nil, fmt.Errorf("compile @%s: %w", f.Name, err)
		}
		st.Marks += c.Marks
		st.SpillLoads += c.SpillLoads
		st.SpillStores += c.SpillStores
		st.FrameWords += c.FrameWords
		funcs = append(funcs, c)
	}
	p, err := Link(m, funcs, main, memWords)
	if err != nil {
		return nil, nil, err
	}
	st.StaticInstrs = len(p.Instrs)
	return p, st, nil
}
