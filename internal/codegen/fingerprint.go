package codegen

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a canonical textual encoding of the options that
// affect compilation output. Two ModuleOptions values produce identical
// programs for the same module if and only if their fingerprints are
// equal, so the fingerprint is usable as a content-addressed cache key
// (internal/buildcache keys compiles on (workload, memWords,
// fingerprint)).
//
// Every field of ModuleOptions and core.Options is encoded explicitly;
// adding a field to either struct without extending this encoding would
// silently alias distinct configurations, so keep them in sync (the
// buildcache tests cross-check the field count via reflection).
func (mo ModuleOptions) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "idem=%t;relaxed=%t;purecalls=%t", mo.Idempotent, mo.RelaxedAlloc, mo.PureCalls)
	c := mo.Core
	fmt.Fprintf(&b, ";loop=%t;redelim=%t;unroll=%t;calls=%t;maxregion=%d;balanced=%t",
		c.LoopHeuristic, c.RedElim, c.UnrollLoops, c.CutAtCalls, c.MaxRegionSize, c.BalancedHeuristic)
	if len(c.PureFuncs) > 0 {
		names := make([]string, 0, len(c.PureFuncs))
		for n, ok := range c.PureFuncs {
			if ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(&b, ";pure=%s", strings.Join(names, ","))
	}
	return b.String()
}
