package verify

import "idemproc/internal/isa"

// provReg is the whole-program pre-pass lattice for one value: which
// global object it must point into when used as an address (obj, 0 =
// unknown), and — independently — whether it is a known compile-time
// constant (ck/cv). Both facts are path-invariants joined over every way
// execution can reach a pc; mismatches degrade to unknown, so the
// fixpoint is immediate.
type provReg struct {
	obj int64 // global object anchor (0 = unknown)
	ck  bool  // constant value known on every path
	cv  int64
}

// provState is the pre-pass dataflow state at one pc: a fact per
// register, plus facts about absolutely-addressed memory words. SP is
// itself tracked as a constant (the startup stub materializes it and
// frames adjust it by immediates), so spill slots have known absolute
// addresses and survive the pass — which is what lets a pointer spilled
// before a MARK and reloaded after it keep its provenance.
type provState struct {
	regs [isa.NumRegs]provReg
	mem  map[int64]provReg
}

func (s *provState) clone() *provState {
	c := &provState{regs: s.regs, mem: make(map[int64]provReg, len(s.mem))}
	for k, v := range s.mem {
		c.mem[k] = v
	}
	return c
}

// provPass computes per-pc provenance, flowing straight through MARKs.
// Region boundaries erase value provenance from the per-region analysis
// (live-in registers and stack slots become opaque symbols), which loses
// facts the machine itself preserves:
//
//   - a pointer into global A computed in one region and dereferenced in
//     the next would may-alias every other global (obj recovers this);
//   - a constant materialized just before a MARK — common when
//     MaxRegionSize splits a computation mid-expression — becomes opaque,
//     so exact address offsets turn into may-alias-everything symbols
//     (ck/cv recovers this);
//   - either kind of value spilled before the MARK and reloaded after it
//     (mem recovers this, because spill addresses are compile-time
//     constants once SP is).
//
// The pass inherits the IR's object-extent reasoning: a constant inside a
// global's extent anchors to that global, and pointer+index arithmetic
// keeps the pointer side's anchor (offsets are trusted to stay in bounds,
// exactly as internal/alias trusts IR addressing to stay inside the
// object it names). SP-relative stores with an unknown SP are trusted to
// stay inside the executing function's own frame — the same frame
// discipline the per-region analysis leans on — so they invalidate only
// stack-range facts, not global ones.
func (vf *verifier) provPass() map[int]*provState {
	instrs := vf.p.Instrs
	prov := map[int]*provState{}
	entry := vf.p.Entry
	if entry < 0 || entry >= len(instrs) {
		return prov
	}
	prov[entry] = &provState{mem: map[int64]provReg{}}
	wl := []int{entry}
	inWL := map[int]bool{entry: true}
	for len(wl) > 0 {
		pc := wl[0]
		wl = wl[1:]
		inWL[pc] = false
		out := prov[pc].clone()
		vf.provStep(out, pc)
		for _, s := range vf.provSuccs(pc) {
			if s < 0 || s >= len(instrs) {
				continue
			}
			cur, ok := prov[s]
			changed := false
			if !ok {
				prov[s] = out.clone()
				changed = true
			} else {
				for r := range cur.regs {
					if cur.regs[r].obj != out.regs[r].obj && cur.regs[r].obj != 0 {
						cur.regs[r].obj = 0
						changed = true
					}
					if cur.regs[r].ck && (!out.regs[r].ck || cur.regs[r].cv != out.regs[r].cv) {
						cur.regs[r].ck, cur.regs[r].cv = false, 0
						changed = true
					}
				}
				for k, cf := range cur.mem {
					of, ok := out.mem[k]
					if !ok {
						delete(cur.mem, k)
						changed = true
						continue
					}
					merged := cf
					if merged.obj != of.obj {
						merged.obj = 0
					}
					if merged.ck && (!of.ck || merged.cv != of.cv) {
						merged.ck, merged.cv = false, 0
					}
					if merged != cf {
						changed = true
						if merged == (provReg{}) {
							delete(cur.mem, k)
						} else {
							cur.mem[k] = merged
						}
					}
				}
			}
			if changed && !inWL[s] {
				wl = append(wl, s)
				inWL[s] = true
			}
		}
	}
	return prov
}

// provStep is the transfer function: track global anchors and constants
// through moves, arithmetic and constant-addressed memory, drop them
// everywhere else.
func (vf *verifier) provStep(st *provState, pc int) {
	in := vf.p.Instrs[pc]
	if in.Shadow != 0 || in.Meta {
		return
	}
	regs := &st.regs
	set := func(r isa.Reg, v provReg) {
		if int(r) < len(regs) {
			regs[r] = v
		}
	}
	switch in.Op {
	case isa.MOVI:
		g, _ := vf.anchor(in.Imm)
		set(in.Rd, provReg{obj: g, ck: true, cv: in.Imm})
	case isa.MOV, isa.FMOV:
		set(in.Rd, regs[in.Rs1])
	case isa.ADDI:
		a := regs[in.Rs1]
		out := provReg{obj: a.obj}
		if a.ck {
			out.ck, out.cv = true, a.cv+in.Imm
			out.obj, _ = vf.anchor(out.cv)
		}
		set(in.Rd, out)
	case isa.ADD:
		// Constant operands win the anchor, mirroring addVals' const-anchor
		// priority: `base + index` anchors to the global the constant base
		// names, and the index side's tag — which may be a scalar that
		// merely passed through a small constant — is ignored. Only when
		// neither side is a known constant do the object tags join.
		a, b := regs[in.Rs1], regs[in.Rs2]
		var out provReg
		switch {
		case a.ck && b.ck:
			out.ck, out.cv = true, a.cv+b.cv
			out.obj, _ = vf.anchor(out.cv)
		case a.ck:
			out.obj, _ = vf.anchor(a.cv)
		case b.ck:
			out.obj, _ = vf.anchor(b.cv)
		case a.obj == b.obj:
			out.obj = a.obj
		case b.obj == 0:
			out.obj = a.obj
		case a.obj == 0:
			out.obj = b.obj
		}
		set(in.Rd, out)
	case isa.SUB:
		a, b := regs[in.Rs1], regs[in.Rs2]
		var out provReg
		switch {
		case a.ck && b.ck:
			out.ck, out.cv = true, a.cv-b.cv
			out.obj, _ = vf.anchor(out.cv)
		case b.ck || b.obj == 0:
			// Pointer minus a scalar stays inside the pointed-to object.
			out.obj = a.obj
		}
		set(in.Rd, out)
	case isa.MUL:
		a, b := regs[in.Rs1], regs[in.Rs2]
		var out provReg
		if a.ck && b.ck {
			out.ck, out.cv = true, a.cv*b.cv
			out.obj, _ = vf.anchor(out.cv)
		}
		set(in.Rd, out)
	case isa.LDR:
		a := regs[in.Rs1]
		var out provReg
		if a.ck {
			out = st.mem[a.cv+in.Imm]
		}
		set(in.Rd, out)
	case isa.STR, isa.FSTR:
		a := regs[in.Rs1]
		switch {
		case a.ck:
			var v provReg
			if in.Op == isa.STR {
				v = regs[in.Rs2]
			}
			key := a.cv + in.Imm
			if v == (provReg{}) {
				delete(st.mem, key)
			} else {
				st.mem[key] = v
			}
		case in.Rs1 == isa.SP:
			// Unknown SP (function called from several stack depths): the
			// store lands somewhere in the current frame, so only facts in
			// the stack range are at risk.
			for k := range st.mem {
				if k >= vf.p.GlobalEnd {
					delete(st.mem, k)
				}
			}
		case a.obj != 0:
			// Store somewhere inside one global: facts about other objects
			// and the stack survive.
			for k := range st.mem {
				if g, _ := vf.anchor(k); g == a.obj {
					delete(st.mem, k)
				}
			}
		default:
			st.mem = map[int64]provReg{}
		}
	case isa.CALL:
		regs[isa.LR] = provReg{}
	case isa.FLDR, isa.FMOVI, isa.DIV, isa.REM,
		isa.AND, isa.ORR, isa.EOR, isa.LSL, isa.ASR,
		isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE,
		isa.NEG, isa.MVN, isa.FTOI, isa.ITOF, isa.FNEG,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV,
		isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE:
		// Every other producing op yields an untracked value.
		set(in.Rd, provReg{})
	}
}

// provSuccs mirrors the machine CFG without LR tracking: RET flows to
// every return site of the containing function.
func (vf *verifier) provSuccs(pc int) []int {
	in := vf.p.Instrs[pc]
	if in.Shadow != 0 || in.Meta {
		return []int{pc + 1}
	}
	switch in.Op {
	case isa.B, isa.CALL:
		return []int{int(in.Imm)}
	case isa.CBZ, isa.CBNZ:
		return []int{pc + 1, int(in.Imm)}
	case isa.RET:
		fn := ""
		if pc < len(vf.p.FuncOf) {
			fn = vf.p.FuncOf[pc]
		}
		return append([]int(nil), vf.callers[fn]...)
	case isa.HALT:
		return nil
	}
	return []int{pc + 1}
}
