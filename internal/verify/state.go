package verify

import (
	"fmt"

	"idemproc/internal/isa"
)

// Space classifies an abstract location.
type Space uint8

const (
	// SpaceReg: a physical register.
	SpaceReg Space = iota
	// SpaceStack: a stack word, (Base, Off) relative to a stack base
	// (base 0 is the region-entry SP). Obj carries the provenance
	// anchor: -1 for direct frame addressing (spill slots, saved LR),
	// an alloca's frame offset for pointers derived from it, -2 for an
	// unanchored stack pointer (aliases the whole frame).
	SpaceStack
	// SpaceAbs: an absolute word address (globals). Inexact locations
	// are anchored to the containing global's base address in Obj.
	SpaceAbs
	// SpaceSym: an offset from an opaque live-in base (Base is the
	// symbol id).
	SpaceSym
	// SpaceAny: an unknown address; may alias anything except the stack
	// (mirroring the IR rule that unknown pointers do not reach
	// non-escaped allocas — and the frame is invisible to the IR).
	SpaceAny
)

// Loc is an abstract machine location.
type Loc struct {
	Space Space
	Reg   isa.Reg
	Base  int64
	Obj   int64
	Off   int64
	Exact bool
}

func (l Loc) String() string {
	switch l.Space {
	case SpaceReg:
		return l.Reg.String()
	case SpaceStack:
		if l.Exact {
			return fmt.Sprintf("stack(b%d%+d)", l.Base, l.Off)
		}
		return fmt.Sprintf("stack(b%d,obj%d+?)", l.Base, l.Obj)
	case SpaceAbs:
		if l.Exact {
			return fmt.Sprintf("mem[%d]", l.Off)
		}
		return fmt.Sprintf("mem[%d+?]", l.Obj)
	case SpaceSym:
		if l.Exact {
			return fmt.Sprintf("sym%d%+d", l.Base, l.Off)
		}
		return fmt.Sprintf("sym%d+?", l.Base)
	}
	return "mem[?]"
}

// vkind is the abstract value kind.
type vkind uint8

const (
	vUnknown vkind = iota
	vConst
	vStack
	vSym
)

// val is an abstract register or slot value. rigid marks values that are
// fixed for the whole dynamic execution of a region (region-entry live-ins
// and constants): only locations addressed through rigid values can
// must-kill an exposure.
type val struct {
	kind  vkind
	base  int64
	obj   int64
	off   int64
	exact bool
	rigid bool
}

func vconst(c int64) val { return val{kind: vConst, off: c, exact: true, rigid: true} }

// addImm adds a known constant to a value, preserving provenance.
func addImm(v val, c int64) val {
	if v.exact {
		switch v.kind {
		case vConst, vStack, vSym:
			v.off += c
		}
	}
	return v
}

// inexactOf drops offset knowledge but keeps the provenance anchor
// (mirrors the IR resolving base+variable-index to the base's object
// with an unknown offset).
func inexactOf(v val) val {
	switch v.kind {
	case vStack:
		return val{kind: vStack, base: v.base, obj: v.obj, exact: false}
	case vSym:
		return val{kind: vSym, base: v.base, obj: v.obj, exact: false}
	case vConst:
		if !v.exact {
			return v
		}
	}
	return val{}
}

func ptrLike(v val) bool {
	return v.kind == vStack || v.kind == vSym || (v.kind == vConst && !v.exact)
}

// opaque is the stable symbol for "the result computed at pc": exact so
// derived offsets separate, but not rigid (it may differ across loop
// iterations, so it can never witness a must-kill).
func (vf *verifier) opaque(pc int) val {
	id, ok := vf.pcID[pc]
	if !ok {
		id = vf.fresh()
		vf.pcID[pc] = id
	}
	return val{kind: vSym, base: id, exact: true}
}

// addVals models ADD. A known constant acts as the offset side; a global
// base plus a variable index keeps the global's object identity.
func (vf *verifier) addVals(a, b val, pc int) val {
	if b.kind == vConst && b.exact {
		a, b = b, a
	}
	if a.kind == vConst && a.exact {
		if b.kind == vConst && b.exact {
			return vconst(a.off + b.off)
		}
		if b.kind == vStack {
			return addImm(b, a.off)
		}
		// A constant inside a global's extent added to a computed value is
		// base-plus-index addressing: keep the global's object identity
		// (mirrors the IR resolving Add(global, idx) to the global with an
		// unknown offset).
		if g, ok := vf.anchor(a.off); ok {
			return val{kind: vConst, obj: g, exact: false}
		}
		if ptrLike(b) {
			return addImm(b, a.off)
		}
		return val{}
	}
	ap, bp := ptrLike(a), ptrLike(b)
	if ap && !bp {
		return inexactOf(a)
	}
	if bp && !ap {
		return inexactOf(b)
	}
	return vf.opaque(pc)
}

func (vf *verifier) subVals(a, b val, pc int) val {
	if b.kind == vConst && b.exact {
		if a.kind == vConst && a.exact {
			return vconst(a.off - b.off)
		}
		return addImm(a, -b.off)
	}
	if ptrLike(a) && !ptrLike(b) {
		return inexactOf(a)
	}
	return vf.opaque(pc)
}

// locOf maps (address value, immediate) to an abstract location, plus
// whether the address is rigid (eligible to witness must-kills).
func locOf(av val, imm int64) (Loc, bool) {
	switch av.kind {
	case vConst:
		if av.exact {
			return Loc{Space: SpaceAbs, Off: av.off + imm, Exact: true}, true
		}
		return Loc{Space: SpaceAbs, Obj: av.obj}, false
	case vStack:
		if av.exact {
			return Loc{Space: SpaceStack, Base: av.base, Obj: av.obj, Off: av.off + imm, Exact: true}, av.rigid
		}
		return Loc{Space: SpaceStack, Base: av.base, Obj: av.obj}, false
	case vSym:
		if av.exact {
			return Loc{Space: SpaceSym, Base: av.base, Obj: av.obj, Off: av.off + imm, Exact: true}, av.rigid
		}
		return Loc{Space: SpaceSym, Base: av.base, Obj: av.obj}, false
	}
	return Loc{Space: SpaceAny}, false
}

// memKey identifies an exact location for the must-write (kill) set and
// the slot-content map. Stack keys deliberately drop the provenance
// anchor: exact locations are compared by address identity alone.
type memKey struct {
	space Space
	base  int64
	off   int64
}

func keyOf(l Loc) memKey { return memKey{space: l.Space, base: l.Base, off: l.Off} }

// mayAlias decides whether two abstract memory locations can name the
// same word. The rules mirror internal/alias: distinct stack bases and
// distinct provenance objects never overlap (stack discipline), exact
// addresses compare numerically, opaque bases may overlap anything
// outside the stack.
func (vf *verifier) mayAlias(a, b Loc) bool {
	if a.Space == SpaceAny {
		return b.Space != SpaceStack
	}
	if b.Space == SpaceAny {
		return a.Space != SpaceStack
	}
	if (a.Space == SpaceStack) != (b.Space == SpaceStack) {
		return false
	}
	switch a.Space {
	case SpaceStack:
		if a.Base != b.Base {
			return false
		}
		if a.Exact && b.Exact {
			return a.Off == b.Off
		}
		if (!a.Exact && (a.Obj == -1 || a.Obj == -2)) || (!b.Exact && (b.Obj == -1 || b.Obj == -2)) {
			return true
		}
		if a.Obj == -2 || b.Obj == -2 {
			return true
		}
		return a.Obj == b.Obj
	case SpaceAbs:
		if b.Space == SpaceAbs {
			if a.Exact && b.Exact {
				return a.Off == b.Off
			}
			if !a.Exact && !b.Exact {
				return a.Obj == b.Obj
			}
			ex, in := a, b
			if !a.Exact {
				ex, in = b, a
			}
			g, ok := vf.anchor(ex.Off)
			return ok && g == in.Obj
		}
		// abs vs sym: a live-in pointer may address a global, unless its
		// tracked provenance pins it to a different object.
		return !vf.distinctObj(b, a)
	case SpaceSym:
		if b.Space == SpaceSym {
			if a.Base == b.Base && a.Exact && b.Exact {
				return a.Off == b.Off
			}
			if a.Obj != 0 && b.Obj != 0 && a.Obj != b.Obj {
				return false
			}
			return true
		}
		if b.Space == SpaceAbs {
			return !vf.distinctObj(a, b)
		}
		return true
	}
	return true
}

// distinctObj reports that a provenance-tagged symbolic location and an
// absolute location provably name different global objects. Trusts the
// same object-extent reasoning as the IR: a tagged pointer stays inside
// the global it was derived from.
func (vf *verifier) distinctObj(sym, abs Loc) bool {
	if sym.Obj == 0 {
		return false
	}
	if abs.Exact {
		g, ok := vf.anchor(abs.Off)
		return !ok || g != sym.Obj
	}
	return abs.Obj != 0 && abs.Obj != sym.Obj
}

// state is the per-program-point dataflow fact for one region: abstract
// register and slot values (for provenance tracking through spills), the
// exposed-read sets (may, union at joins) and the must-written kill sets
// (intersection at joins).
type state struct {
	regs  [isa.NumRegs]val
	eregs [isa.NumRegs]bool
	wregs [isa.NumRegs]bool
	mem   map[memKey]val
	emem  map[Loc]struct{}
	wmem  map[memKey]struct{}
}

func newState() *state {
	return &state{
		mem:  map[memKey]val{},
		emem: map[Loc]struct{}{},
		wmem: map[memKey]struct{}{},
	}
}

func (s *state) clone() *state {
	c := &state{regs: s.regs, eregs: s.eregs, wregs: s.wregs,
		mem:  make(map[memKey]val, len(s.mem)),
		emem: make(map[Loc]struct{}, len(s.emem)),
		wmem: make(map[memKey]struct{}, len(s.wmem))}
	for k, v := range s.mem {
		c.mem[k] = v
	}
	for l := range s.emem {
		c.emem[l] = struct{}{}
	}
	for k := range s.wmem {
		c.wmem[k] = struct{}{}
	}
	return c
}

// mergeFrom joins src into dst at join point pc, reporting change.
func (dst *state) mergeFrom(src *state, pc int, vf *verifier) bool {
	changed := false
	for i := range dst.regs {
		if src.eregs[i] && !dst.eregs[i] {
			dst.eregs[i] = true
			changed = true
		}
		if dst.wregs[i] && !src.wregs[i] {
			dst.wregs[i] = false
			changed = true
		}
		if dst.regs[i] != src.regs[i] {
			j := vf.joinVal(dst.regs[i], src.regs[i], pc, int64(i))
			if j != dst.regs[i] {
				dst.regs[i] = j
				changed = true
			}
		}
	}
	for l := range src.emem {
		if _, ok := dst.emem[l]; !ok {
			dst.emem[l] = struct{}{}
			changed = true
		}
	}
	for k := range dst.wmem {
		if _, ok := src.wmem[k]; !ok {
			delete(dst.wmem, k)
			changed = true
		}
	}
	for k, dv := range dst.mem {
		sv, ok := src.mem[k]
		if !ok {
			delete(dst.mem, k)
			changed = true
			continue
		}
		if sv != dv {
			j := vf.joinVal(dv, sv, pc, vf.memSlotID(k))
			if j != dv {
				dst.mem[k] = j
				changed = true
			}
		}
	}
	return changed
}

// memSlotID gives a stable join-slot index for a memory key (register
// slots use 0..NumRegs-1).
func (vf *verifier) memSlotID(k memKey) int64 {
	id, ok := vf.memSlot[k]
	if !ok {
		id = int64(isa.NumRegs) + int64(len(vf.memSlot))
		vf.memSlot[k] = id
	}
	return id
}

// joinVal degrades two differing values. Memoized symbol allocation
// (joinID keyed by join point and slot) makes the join idempotent, so
// the fixpoint converges: a second visit reproduces the same symbol.
func (vf *verifier) joinVal(a, b val, pc int, slot int64) val {
	if a == b {
		return a
	}
	switch {
	case a.kind == vConst && b.kind == vConst:
		if a.exact && b.exact {
			g1, ok1 := vf.anchor(a.off)
			g2, ok2 := vf.anchor(b.off)
			if ok1 && ok2 && g1 == g2 {
				return val{kind: vConst, obj: g1, exact: false}
			}
			return val{}
		}
		if !a.exact && !b.exact && a.obj == b.obj {
			return val{kind: vConst, obj: a.obj, exact: false}
		}
		ex, in := a, b
		if !a.exact {
			ex, in = b, a
		}
		if ex.exact && !in.exact {
			if g, ok := vf.anchor(ex.off); ok && g == in.obj {
				return in
			}
		}
		return val{}
	case a.kind == vStack && b.kind == vStack:
		if a.obj == -1 && b.obj == -1 {
			// Two frame pointers meeting (recursion): collapse onto a
			// fresh stack base — frames stay disjoint by discipline, and
			// per-depth write-before-read keeps must-kills truthful.
			id := vf.joinStackBase(pc, slot)
			return val{kind: vStack, base: id, obj: -1, exact: true, rigid: true}
		}
		if a.base == b.base && a.obj == b.obj {
			return val{kind: vStack, base: a.base, obj: a.obj, exact: false}
		}
		return val{}
	case a.kind == vSym && b.kind == vSym && a.base == b.base:
		obj := a.obj
		if b.obj != obj {
			obj = 0
		}
		return val{kind: vSym, base: a.base, obj: obj, exact: false}
	}
	return val{}
}

func (vf *verifier) joinStackBase(pc int, slot int64) int64 {
	k := joinKey{pc, slot}
	id, ok := vf.joinID[k]
	if !ok {
		id = vf.fresh()
		vf.joinID[k] = id
	}
	return id
}

// exemptReg reports registers outside the criterion: SP and LR are
// snapshotted at every MARK and restored on recovery, RP is the mark.
func exemptReg(r isa.Reg) bool { return r == isa.SP || r == isa.LR || r == isa.RP }

func (vf *verifier) readReg(st *state, r isa.Reg) val {
	if !exemptReg(r) && !st.wregs[r] {
		st.eregs[r] = true
	}
	return st.regs[r]
}

func (vf *verifier) writeReg(st *state, r isa.Reg, v val, pc, region int) {
	if !exemptReg(r) && st.eregs[r] {
		vf.violate(region, pc, Loc{Space: SpaceReg, Reg: r}, KindClobberReg)
	}
	st.regs[r] = v
	st.wregs[r] = true
}

// memRead records the exposure of a load unless a must-write to the same
// exact, rigidly-addressed word precedes it in-region (a flow
// dependence: re-execution reads the value the region itself wrote).
func (vf *verifier) memRead(st *state, loc Loc, rigid bool) {
	if loc.Exact && rigid {
		if _, ok := st.wmem[keyOf(loc)]; ok {
			return
		}
	}
	st.emem[loc] = struct{}{}
}

// memWrite flags the store if it may alias any exposed read, then
// updates the kill set and the slot-content map.
func (vf *verifier) memWrite(st *state, loc Loc, v val, rigid bool, pc, region int) {
	for e := range st.emem {
		if vf.mayAlias(e, loc) {
			vf.violate(region, pc, loc, KindClobberMem)
			break
		}
	}
	if loc.Exact && rigid {
		st.wmem[keyOf(loc)] = struct{}{}
	}
	if loc.Space == SpaceStack && loc.Exact {
		// Exact slots are address identities: only the written word changes.
		st.mem[keyOf(loc)] = v
		return
	}
	if loc.Space == SpaceStack {
		// Imprecise stack store: drop every same-base slot value it might
		// overwrite (non-stack stores cannot reach the frame).
		for k := range st.mem {
			if k.base == loc.Base {
				delete(st.mem, k)
			}
		}
	}
}

// slotVal is the stable symbol for "the region-entry content of slot k":
// rigid, because an in-region clobber of the slot would itself be
// flagged.
func (vf *verifier) slotVal(k memKey) val {
	id, ok := vf.slotID[k]
	if !ok {
		id = vf.fresh()
		vf.slotID[k] = id
	}
	return val{kind: vSym, base: id, exact: true, rigid: true}
}

// step executes the transfer function for pc on st (already a private
// copy) and returns the successor pcs.
func (vf *verifier) step(st *state, pc, region int) []int {
	in := vf.p.Instrs[pc]
	if in.Shadow != 0 || in.Meta {
		return []int{pc + 1} // protected instrumentation: no architectural effect
	}
	switch in.Op {
	case isa.NOP, isa.CHECK, isa.MAJ:
		return []int{pc + 1}
	case isa.MOVI:
		vf.writeReg(st, in.Rd, vconst(in.Imm), pc, region)
	case isa.FMOVI:
		vf.writeReg(st, in.Rd, val{}, pc, region)
	case isa.MOV, isa.FMOV:
		v := vf.readReg(st, in.Rs1)
		vf.writeReg(st, in.Rd, v, pc, region)
	case isa.ADD:
		a, b := vf.readReg(st, in.Rs1), vf.readReg(st, in.Rs2)
		vf.writeReg(st, in.Rd, vf.addVals(a, b, pc), pc, region)
	case isa.SUB:
		a, b := vf.readReg(st, in.Rs1), vf.readReg(st, in.Rs2)
		vf.writeReg(st, in.Rd, vf.subVals(a, b, pc), pc, region)
	case isa.MUL, isa.DIV, isa.REM, isa.AND, isa.ORR, isa.EOR, isa.LSL, isa.ASR,
		isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE:
		vf.readReg(st, in.Rs1)
		vf.readReg(st, in.Rs2)
		vf.writeReg(st, in.Rd, vf.opaque(pc), pc, region)
	case isa.ADDI:
		v := vf.readReg(st, in.Rs1)
		res := addImm(v, in.Imm)
		if v.kind == vStack && v.obj == -1 && v.exact && in.Rd != isa.SP {
			// A frame address materialized into a pointer register is an
			// alloca base: give it its own provenance object.
			res.obj = res.off
		}
		vf.writeReg(st, in.Rd, res, pc, region)
	case isa.NEG, isa.MVN, isa.FTOI:
		vf.readReg(st, in.Rs1)
		vf.writeReg(st, in.Rd, vf.opaque(pc), pc, region)
	case isa.ITOF, isa.FNEG:
		vf.readReg(st, in.Rs1)
		vf.writeReg(st, in.Rd, val{}, pc, region)
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		vf.readReg(st, in.Rs1)
		vf.readReg(st, in.Rs2)
		vf.writeReg(st, in.Rd, val{}, pc, region)
	case isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE:
		vf.readReg(st, in.Rs1)
		vf.readReg(st, in.Rs2)
		vf.writeReg(st, in.Rd, vf.opaque(pc), pc, region)
	case isa.LDR, isa.FLDR:
		av := vf.readReg(st, in.Rs1)
		loc, rigid := locOf(av, in.Imm)
		vf.memRead(st, loc, rigid)
		res := val{}
		if in.Op == isa.LDR && loc.Space == SpaceStack && loc.Exact {
			k := keyOf(loc)
			if v, ok := st.mem[k]; ok {
				res = v
			} else if _, written := st.wmem[k]; written {
				res = vf.opaque(pc) // overwritten then forgotten: not entry content
			} else {
				res = vf.slotVal(k)
				// Upgrade the opaque entry symbol with whatever the
				// whole-program pre-pass proved about this slot's content at
				// the region boundary: spilled pointers keep their global
				// anchor, spilled constants their value. Base 0 is the
				// region-entry SP, so the absolute slot address is known
				// whenever SP's is.
				if k.base == 0 {
					if ps := vf.prov[vf.regionStart]; ps != nil && ps.regs[isa.SP].ck {
						f := ps.mem[ps.regs[isa.SP].cv+k.off]
						if f.ck {
							res = vconst(f.cv)
						} else {
							res.obj = f.obj
						}
					}
				}
				st.mem[k] = res
			}
		}
		vf.writeReg(st, in.Rd, res, pc, region)
	case isa.STR, isa.FSTR:
		av := vf.readReg(st, in.Rs1)
		data := vf.readReg(st, in.Rs2)
		loc, rigid := locOf(av, in.Imm)
		vf.memWrite(st, loc, data, rigid, pc, region)
	case isa.B:
		return []int{int(in.Imm)}
	case isa.CBZ, isa.CBNZ:
		vf.readReg(st, in.Rs1)
		return []int{pc + 1, int(in.Imm)}
	case isa.CALL:
		st.regs[isa.LR] = vconst(int64(pc + 1))
		st.wregs[isa.LR] = true
		return []int{int(in.Imm)}
	case isa.RET:
		lr := st.regs[isa.LR]
		if lr.kind == vConst && lr.exact {
			return []int{int(lr.off)}
		}
		// Opaque return address (region entered mid-callee): conservatively
		// continue at every return site of the containing function.
		fn := ""
		if pc < len(vf.p.FuncOf) {
			fn = vf.p.FuncOf[pc]
		}
		return append([]int(nil), vf.callers[fn]...)
	case isa.HALT:
		return nil
	case isa.MARK:
		// Only reached for Shadow/Meta-free marks at pc != region entry;
		// the driver treats these as boundaries before stepping, so this
		// is the region's own entry revisited: commit, path ends.
		return nil
	}
	return []int{pc + 1}
}
