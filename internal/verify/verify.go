// Package verify is a machine-level translation validator for the paper's
// §2.1 idempotence criterion. It re-derives, directly from a linked
// codegen.Program's flat isa.Instr stream — independently of every
// compiler pass that constructed it — the guarantee the whole system
// rests on: within a MARK-delimited region, no location is written after
// an exposed read (a read of the region's live-in state), so any region
// can be re-executed from its entry point with identical results.
//
// The checker rebuilds the machine-level CFG from branch targets and MARK
// boundaries (interprocedurally: CALL edges into callees, RET edges
// recovered through a tracked link register, with an all-callers fallback
// when LR is opaque), then runs a forward may/must dataflow per region
// over an abstract location model:
//
//   - registers, with SP/LR/RP exempt (the recovery contract snapshots
//     SP and LR at every MARK and restores them on re-execution, and RP
//     is written by the mark itself — see internal/machine);
//   - stack words by (base, offset), where a base is a region-entry-SP
//     provenance class and frames collapse onto fresh symbolic bases
//     under recursion (the stack-discipline axiom: distinct frames do
//     not overlap);
//   - globals by absolute word address with per-global extents;
//   - opaque symbolic bases for live-in pointer values.
//
// The alias rules deliberately mirror internal/alias's IR-level
// precision: any load/store pair the IR analysis called may-aliasing was
// already cut apart by redelim/multicut, so the machine model never
// claims no-alias where the IR would not, and conservative answers can
// never flag correct output (no false positives on the workload matrix).
// Mutations that break the machine-level discipline — a dropped MARK, a
// store reordered across a load, a retargeted spill slot — are caught by
// the exact-offset and provenance rules. Verify never panics on
// malformed input; structural damage surfaces as KindBadBranch
// violations instead. See docs/verify.md.
package verify

import (
	"sort"

	"idemproc/internal/codegen"
	"idemproc/internal/isa"
)

// Kind classifies a violation of the region re-execution contract.
type Kind uint8

const (
	// KindClobberReg: a register with an exposed in-region read is
	// overwritten later in the same region (§4.4 broken).
	KindClobberReg Kind = iota
	// KindClobberMem: a store may-aliases a memory location with an
	// exposed in-region read (§2.1 clobber antidependence).
	KindClobberMem
	// KindBadBranch: control flow leaves the instruction stream
	// (malformed or truncated program).
	KindBadBranch
	// KindBudget: the dataflow did not converge within the analysis
	// budget; the region could not be proven safe.
	KindBudget
)

func (k Kind) String() string {
	switch k {
	case KindClobberReg:
		return "register-clobber"
	case KindClobberMem:
		return "memory-clobber"
	case KindBadBranch:
		return "bad-branch"
	case KindBudget:
		return "analysis-budget"
	}
	return "unknown"
}

// Violation reports one breach of the criterion: the instruction at PC,
// inside the region entered at Region (the pc of its MARK, or the
// program entry for the startup pseudo-region), writes Loc even though
// Loc has an exposed read earlier in the region.
type Violation struct {
	Region int
	PC     int
	Loc    Loc
	Kind   Kind
}

// Report is the result of verifying one program.
type Report struct {
	Violations []Violation
	// Regions is the number of regions analyzed (every MARK plus the
	// startup pseudo-region).
	Regions int
	// Skipped is set when the program carries no region marks (compiled
	// non-idempotent) and there is nothing to check.
	Skipped bool
}

// OK reports whether the program passed (a skipped program is trivially
// OK — there is no contract to check).
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Verify checks every region of p against the §2.1 criterion. It never
// panics: malformed programs produce KindBadBranch violations. Programs
// without marks (p.Marks == 0) are Skipped.
func Verify(p *codegen.Program) *Report {
	rep := &Report{}
	if p == nil || len(p.Instrs) == 0 {
		return rep
	}
	if p.Marks == 0 {
		rep.Skipped = true
		return rep
	}
	vf := newVerifier(p)
	vf.analyzeRegion(p.Entry)
	rep.Regions++
	for pc, in := range p.Instrs {
		if in.Op == isa.MARK && in.Shadow == 0 {
			vf.analyzeRegion(pc)
			rep.Regions++
		}
	}
	rep.Violations = vf.out
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Kind < b.Kind
	})
	return rep
}

// verifier holds the per-program analysis context: symbol allocation is
// memoized so the fixpoint converges (a join point always degrades to
// the same fresh symbol), and the caller map backs the RET fallback.
type verifier struct {
	p       *codegen.Program
	gbase   []int64            // sorted global base addresses (extent table)
	callers map[string][]int   // function name -> return-site pcs
	prov    map[int]*provState // per-pc register + memory provenance (see prov.go)

	// regionStart is the first in-region pc of the region currently under
	// analysis; slot reads use it to look up entry-content provenance.
	regionStart int

	nextID  int64
	entryID [isa.NumRegs]int64 // region-entry register symbols
	pcID    map[int]int64      // opaque per-instruction results
	slotID  map[memKey]int64   // region-entry contents of stack slots
	joinID  map[joinKey]int64  // degraded values at join points
	memSlot map[memKey]int64   // stable slot index for join keying

	seen map[vkey]bool
	out  []Violation
}

type joinKey struct {
	pc   int
	slot int64
}

type vkey struct {
	region int
	pc     int
	kind   Kind
}

func newVerifier(p *codegen.Program) *verifier {
	vf := &verifier{
		p:       p,
		callers: map[string][]int{},
		pcID:    map[int]int64{},
		slotID:  map[memKey]int64{},
		joinID:  map[joinKey]int64{},
		memSlot: map[memKey]int64{},
		seen:    map[vkey]bool{},
	}
	for _, base := range p.GlobalBase {
		vf.gbase = append(vf.gbase, base)
	}
	sort.Slice(vf.gbase, func(i, j int) bool { return vf.gbase[i] < vf.gbase[j] })
	for pc, in := range p.Instrs {
		if in.Op == isa.CALL && in.Shadow == 0 {
			vf.callers[in.Sym] = append(vf.callers[in.Sym], pc+1)
		}
	}
	vf.nextID = 1
	for r := range vf.entryID {
		vf.entryID[r] = vf.fresh()
	}
	vf.prov = vf.provPass()
	return vf
}

func (vf *verifier) fresh() int64 {
	id := vf.nextID
	vf.nextID++
	return id
}

// anchor finds the global object containing absolute word address a.
func (vf *verifier) anchor(a int64) (int64, bool) {
	if a < 1 || a >= vf.p.GlobalEnd || len(vf.gbase) == 0 {
		return 0, false
	}
	i := sort.Search(len(vf.gbase), func(i int) bool { return vf.gbase[i] > a })
	if i == 0 {
		return 0, false
	}
	return vf.gbase[i-1], true
}

func (vf *verifier) violate(region, pc int, loc Loc, kind Kind) {
	k := vkey{region, pc, kind}
	if vf.seen[k] {
		return
	}
	vf.seen[k] = true
	vf.out = append(vf.out, Violation{Region: region, PC: pc, Loc: loc, Kind: kind})
}

// analyzeRegion runs the exposure dataflow for the region entered at
// entry (a MARK pc, or the program entry for the startup pseudo-region)
// to a fixpoint over every path that ends at the next MARK or HALT.
func (vf *verifier) analyzeRegion(entry int) {
	instrs := vf.p.Instrs
	start := entry
	if instrs[entry].Op == isa.MARK {
		start = entry + 1
		if start >= len(instrs) {
			vf.violate(entry, entry, Loc{Space: SpaceAny}, KindBadBranch)
			return
		}
	}
	states := map[int]*state{start: vf.entryState(start)}
	wl := []int{start}
	inWL := map[int]bool{start: true}
	steps, budget := 0, 128*len(instrs)+4096
	for len(wl) > 0 {
		steps++
		if steps > budget {
			vf.violate(entry, entry, Loc{Space: SpaceAny}, KindBudget)
			return
		}
		pc := wl[0]
		wl = wl[1:]
		inWL[pc] = false
		st := states[pc].clone()
		succs := vf.step(st, pc, entry)
		for _, s := range succs {
			if s < 0 || s >= len(instrs) {
				vf.violate(entry, pc, Loc{Space: SpaceAny}, KindBadBranch)
				continue
			}
			if instrs[s].Op == isa.MARK && instrs[s].Shadow == 0 {
				continue // region boundary: state commits here
			}
			cur, ok := states[s]
			changed := false
			if !ok {
				states[s] = st.clone()
				changed = true
			} else {
				changed = cur.mergeFrom(st, s, vf)
			}
			if changed && !inWL[s] {
				wl = append(wl, s)
				inWL[s] = true
			}
		}
	}
}

// entryState models the machine at a region boundary: SP is the only
// value with full provenance (stack base 0); every other register holds
// an opaque but fixed live-in value, upgraded with whatever the
// whole-program pre-pass proved about it — a known constant becomes a
// real constant (MaxRegionSize splits routinely strand `movi`s just
// before a MARK), and a global-object anchor tags the symbol so
// different-object addresses stop may-aliasing.
func (vf *verifier) entryState(start int) *state {
	st := newState()
	vf.regionStart = start
	pv := vf.prov[start]
	for r := 0; r < isa.NumRegs; r++ {
		st.regs[r] = val{kind: vSym, base: vf.entryID[r], exact: true, rigid: true}
		if pv != nil {
			if pv.regs[r].ck {
				st.regs[r] = vconst(pv.regs[r].cv)
			} else {
				st.regs[r].obj = pv.regs[r].obj
			}
		}
	}
	st.regs[isa.SP] = val{kind: vStack, base: 0, obj: -1, exact: true, rigid: true}
	return st
}
