package verify

import (
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/isa"
	"idemproc/internal/workloads"
)

// matrix is the ModuleOptions grid every workload must verify cleanly
// under: the paper's default configuration plus the scheme variants that
// change region shape (pure-call regions, no unroll, bounded regions, no
// loop heuristic).
var matrix = []struct {
	name string
	mo   codegen.ModuleOptions
}{
	{"default", codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}},
	{"purecalls", codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions(), PureCalls: true}},
	{"nounroll", codegen.ModuleOptions{Idempotent: true,
		Core: core.Options{LoopHeuristic: true, RedElim: true, CutAtCalls: true}}},
	{"maxregion8", codegen.ModuleOptions{Idempotent: true,
		Core: func() core.Options { o := core.DefaultOptions(); o.MaxRegionSize = 8; return o }()}},
	// The other MaxRegionSize tiers the service's load palette requests:
	// mid-size bounds split computations mid-expression, stranding
	// constants and spilled pointers on the far side of a MARK — the cases
	// the pre-pass (prov.go) exists for.
	{"maxregion16", codegen.ModuleOptions{Idempotent: true,
		Core: func() core.Options { o := core.DefaultOptions(); o.MaxRegionSize = 16; return o }()}},
	{"maxregion32", codegen.ModuleOptions{Idempotent: true,
		Core: func() core.Options { o := core.DefaultOptions(); o.MaxRegionSize = 32; return o }()}},
	{"maxregion64", codegen.ModuleOptions{Idempotent: true,
		Core: func() core.Options { o := core.DefaultOptions(); o.MaxRegionSize = 64; return o }()}},
	{"noloopheur", codegen.ModuleOptions{Idempotent: true,
		Core: core.Options{RedElim: true, UnrollLoops: true, CutAtCalls: true}}},
	{"redelim-off", codegen.ModuleOptions{Idempotent: true,
		Core: func() core.Options { o := core.DefaultOptions(); o.RedElim = false; return o }()}},
}

func compile(t *testing.T, w workloads.Workload, mo codegen.ModuleOptions) *codegen.Program {
	t.Helper()
	p, _, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords, mo)
	if err != nil {
		t.Fatalf("compile %s: %v", w.Name, err)
	}
	return p
}

// TestWorkloadMatrixClean is the no-false-positive gate: correct
// compiler output over the full workload × ModuleOptions matrix must
// verify with zero violations.
func TestWorkloadMatrixClean(t *testing.T) {
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			for _, w := range workloads.All() {
				p := compile(t, w, m.mo)
				rep := Verify(p)
				if rep.Skipped {
					t.Errorf("%s/%s: unexpectedly skipped (marks=%d)", m.name, w.Name, p.Marks)
					continue
				}
				if !rep.OK() {
					t.Errorf("%s/%s: %s", m.name, w.Name, rep.Render(p))
				}
				if rep.Regions < 2 {
					t.Errorf("%s/%s: only %d regions analyzed", m.name, w.Name, rep.Regions)
				}
			}
		})
	}
}

// TestNonIdempotentSkipped: markless programs have no contract to check.
func TestNonIdempotentSkipped(t *testing.T) {
	w, _ := workloads.ByName("bzip2")
	p := compile(t, w, codegen.ModuleOptions{Idempotent: false, Core: core.DefaultOptions()})
	rep := Verify(p)
	if !rep.Skipped || !rep.OK() {
		t.Fatalf("non-idempotent build should be skipped+ok, got %s", rep.Summary())
	}
}

// TestRelaxedAllocDifferential: with the §4.4 allocation constraint
// disabled, live-in registers are redefined in-region and the verifier
// must notice on at least one workload — the ablation doubles as a
// sensitivity check that the analysis is not vacuous.
func TestRelaxedAllocDifferential(t *testing.T) {
	found := 0
	for _, w := range workloads.All() {
		mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions(), RelaxedAlloc: true}
		p := compile(t, w, mo)
		rep := Verify(p)
		if !rep.OK() {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("relaxed-alloc ablation produced zero violations across all workloads; verifier is blind to register clobbers")
	}
	t.Logf("relaxed-alloc: %d/%d workloads rejected", found, len(workloads.All()))
}

// mutate returns a copy of p with its instruction stream edited by fn.
func mutate(p *codegen.Program, fn func(instrs []isa.Instr) bool) (*codegen.Program, bool) {
	q := *p
	q.Instrs = append([]isa.Instr(nil), p.Instrs...)
	ok := fn(q.Instrs)
	return &q, ok
}

func hasKind(rep *Report, k Kind) bool {
	for _, v := range rep.Violations {
		if v.Kind == k {
			return true
		}
	}
	return false
}

// TestMutationDropMark: removing a MARK merges two regions; the merged
// region must expose a clobber somewhere across the suite.
func TestMutationDropMark(t *testing.T) {
	rejected := 0
	for _, w := range workloads.All() {
		p := compile(t, w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
		// Drop each MARK in turn until one mutation is rejected.
		for pc, in := range p.Instrs {
			if in.Op != isa.MARK {
				continue
			}
			q, _ := mutate(p, func(instrs []isa.Instr) bool {
				instrs[pc] = isa.Instr{Op: isa.NOP}
				return true
			})
			q.Marks--
			if q.Marks == 0 {
				continue
			}
			if rep := Verify(q); !rep.OK() {
				rejected++
				break
			}
		}
		if rejected > 0 {
			break
		}
	}
	if rejected == 0 {
		t.Fatal("no dropped-MARK mutation was rejected on any workload")
	}
}

// TestMutationRetargetSpillStore: pointing a spill store at a slot that
// was read earlier in the region clobbers live-in state.
func TestMutationRetargetSpillStore(t *testing.T) {
	rejected := false
	for _, w := range workloads.All() {
		p := compile(t, w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
		// Find a region with a spill load [sp,#a] followed by a spill
		// store [sp,#b], b != a, with no intervening MARK; retarget the
		// store to slot a.
		for pc, in := range p.Instrs {
			if in.Op != isa.LDR || in.Rs1 != isa.SP {
				continue
			}
			for j := pc + 1; j < len(p.Instrs) && p.Instrs[j].Op != isa.MARK &&
				p.Instrs[j].Op != isa.RET && p.Instrs[j].Op != isa.CALL &&
				p.Instrs[j].Op != isa.B && p.Instrs[j].Op != isa.CBZ &&
				p.Instrs[j].Op != isa.CBNZ; j++ {
				sj := p.Instrs[j]
				if sj.Op == isa.STR && sj.Rs1 == isa.SP && sj.Imm != in.Imm {
					q, _ := mutate(p, func(instrs []isa.Instr) bool {
						instrs[j].Imm = in.Imm
						return true
					})
					if rep := Verify(q); hasKind(rep, KindClobberMem) {
						rejected = true
					}
				}
				if rejected {
					break
				}
			}
			if rejected {
				break
			}
		}
		if rejected {
			break
		}
	}
	if !rejected {
		t.Fatal("no retargeted spill store was rejected")
	}
}

// TestMutationBadBranch: a branch retargeted outside the program is
// structural damage, not a crash.
func TestMutationBadBranch(t *testing.T) {
	w, _ := workloads.ByName("bzip2")
	p := compile(t, w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
	q, ok := mutate(p, func(instrs []isa.Instr) bool {
		for i := range instrs {
			if instrs[i].Op == isa.B {
				instrs[i].Imm = int64(len(instrs)) + 99
				return true
			}
		}
		return false
	})
	if !ok {
		t.Skip("no unconditional branch to retarget")
	}
	rep := Verify(q)
	if !hasKind(rep, KindBadBranch) {
		t.Fatalf("retargeted branch not flagged: %s", rep.Summary())
	}
}
