package verify

import (
	"fmt"
	"sort"
	"strings"

	"idemproc/internal/codegen"
)

func (v Violation) String() string {
	return fmt.Sprintf("pc %d (region @%d): %s of %s", v.PC, v.Region, v.Kind, v.Loc)
}

// Summary is a one-line digest suitable for errors and logs.
func (r *Report) Summary() string {
	if r.Skipped {
		return "verify: skipped (no region marks)"
	}
	if r.OK() {
		return fmt.Sprintf("verify: ok (%d regions)", r.Regions)
	}
	return fmt.Sprintf("verify: %d violation(s) in %d regions; first: %s",
		len(r.Violations), r.Regions, r.Violations[0])
}

// Render formats the report with disassembly context around each
// violating instruction, grouped by region.
func (r *Report) Render(p *codegen.Program) string {
	var b strings.Builder
	b.WriteString(r.Summary())
	b.WriteString("\n")
	if r.OK() {
		return b.String()
	}
	const ctx = 2
	for _, v := range r.Violations {
		fn := ""
		if v.PC >= 0 && v.PC < len(p.FuncOf) {
			fn = p.FuncOf[v.PC]
		}
		fmt.Fprintf(&b, "\n%s in <%s>:\n", v, fn)
		lo, hi := v.PC-ctx, v.PC+ctx
		if lo < 0 {
			lo = 0
		}
		if hi >= len(p.Instrs) {
			hi = len(p.Instrs) - 1
		}
		for pc := lo; pc <= hi; pc++ {
			marker := "   "
			if pc == v.PC {
				marker = ">>>"
			}
			fmt.Fprintf(&b, "  %s %5d: %s\n", marker, pc, p.Instrs[pc])
		}
	}
	return b.String()
}

// Annotations returns per-pc notes for codegen.Disassemble, so `idemc
// -disasm -verify` prints violations inline at the offending
// instructions.
func (r *Report) Annotations() map[int][]string {
	if r == nil || len(r.Violations) == 0 {
		return nil
	}
	notes := map[int][]string{}
	vs := append([]Violation(nil), r.Violations...)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].PC != vs[j].PC {
			return vs[i].PC < vs[j].PC
		}
		return vs[i].Kind < vs[j].Kind
	})
	for _, v := range vs {
		notes[v.PC] = append(notes[v.PC],
			fmt.Sprintf("VIOLATION %s of %s (region @%d)", v.Kind, v.Loc, v.Region))
	}
	return notes
}
