package alias

import (
	"testing"

	"idemproc/internal/ir"
)

func valueByName(f *ir.Func, name string) *ir.Value {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

const aliasSrc = `
global @g [4]
global @h [4]

func @f(i64 %p, i64 %q) i64 {
e:
  %a = alloca 4
  %b = alloca 4
  %ga = global @g
  %ha = global @h
  %a1 = add %a, 1
  %a1b = add %a, 1
  %a2 = add %a, 2
  %gi = add %ga, %q
  %x = load %p
  ret %x
}
`

func TestBasicAliasFacts(t *testing.T) {
	m := ir.MustParse(aliasSrc)
	f := m.Func("f")
	ai := Compute(f)

	v := func(n string) *ir.Value { return valueByName(f, n) }
	cases := []struct {
		a, b      string
		may, must bool
	}{
		{"a", "b", false, false},   // distinct allocas
		{"a", "ga", false, false},  // alloca vs global
		{"a1", "a1b", true, true},  // same alloca, same offset
		{"a1", "a2", false, false}, // same alloca, different offsets
		{"ga", "ha", false, false}, // distinct globals
		{"ga", "p", true, false},   // global vs pointer param
		{"p", "q", true, false},    // two pointer params
		{"gi", "ga", true, false},  // unknown index in same global
		{"gi", "ha", false, false}, // unknown index, different global
		{"a", "p", false, false},   // non-escaped alloca vs param
		{"a1", "a", false, false},  // same base, offsets 1 vs 0
		{"p", "p", true, true},     // identical value
	}
	for _, c := range cases {
		if got := ai.MayAlias(v(c.a), v(c.b)); got != c.may {
			t.Errorf("MayAlias(%s, %s) = %v, want %v", c.a, c.b, got, c.may)
		}
		if got := ai.MustAlias(v(c.a), v(c.b)); got != c.must {
			t.Errorf("MustAlias(%s, %s) = %v, want %v", c.a, c.b, got, c.must)
		}
	}
}

func TestEscapeViaStore(t *testing.T) {
	src := `
global @slot [1]

func @f() i64 {
e:
  %a = alloca 2
  %s = global @slot
  store %s, %a      ; address of %a escapes into memory
  %x = load %a
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	ai := Compute(f)
	a := valueByName(f, "a")
	if !ai.Escaped(a) {
		t.Fatal("alloca stored to memory must be escaped")
	}
	// An unknown pointer (loaded from memory) may now alias it.
	if ai.ClassOf(a) != StorageMemory {
		t.Fatal("escaped alloca should classify as memory")
	}
}

func TestEscapeViaCallAndRet(t *testing.T) {
	src := `
func @g(i64 %p) i64 {
e:
  ret %p
}

func @f() i64 {
e:
  %a = alloca 1
  %b = alloca 1
  %a1 = add %a, 0
  %r = call @g(%a1)
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	ai := Compute(f)
	if !ai.Escaped(valueByName(f, "a")) {
		t.Fatal("alloca passed to call (via derived value) must escape")
	}
	if ai.Escaped(valueByName(f, "b")) {
		t.Fatal("unused alloca must not escape")
	}
	if ai.ClassOf(valueByName(f, "b")) != StorageLocalStack {
		t.Fatal("non-escaped alloca should classify as local stack")
	}
}

func TestUnknownVsLocal(t *testing.T) {
	src := `
func @f(i64 %p) i64 {
e:
  %a = alloca 1
  %up = load %p      ; a pointer loaded from memory: unknown
  %x = load %up
  %y = load %a
  %r = add %x, %y
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	ai := Compute(f)
	up, a := valueByName(f, "up"), valueByName(f, "a")
	if ai.MayAlias(up, a) {
		t.Fatal("unknown pointer must not alias non-escaped alloca")
	}
	if !ai.MayAlias(up, valueByName(f, "p")) {
		t.Fatal("unknown pointer may alias params")
	}
	if ai.MustAlias(up, up) != true {
		t.Fatal("identical values must alias")
	}
}

func TestPhiMerge(t *testing.T) {
	src := `
global @g [8]

func @f(i64 %c) i64 {
e:
  %ga = global @g
  %g1 = add %ga, 1
  %g2 = add %ga, 2
  condbr %c, a, b
a:
  br j
b:
  br j
j:
  %p = phi [a: %g1], [b: %g2]
  %x = load %p
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	ai := Compute(f)
	p := valueByName(f, "p")
	l := ai.LocOf(p)
	if l.Kind != BaseGlobal || l.Global != "g" {
		t.Fatalf("φ of two offsets into @g should keep base g, got kind=%d", l.Kind)
	}
	if l.KnownOff {
		t.Fatal("differing offsets must lose offset precision")
	}
	// May alias both, must alias neither.
	if !ai.MayAlias(p, valueByName(f, "g1")) || ai.MustAlias(p, valueByName(f, "g1")) {
		t.Fatal("φ alias facts wrong")
	}
}

func TestStorageClassString(t *testing.T) {
	if StorageLocalStack.String() != "local-stack" || StorageMemory.String() != "memory" {
		t.Fatal("StorageClass strings wrong")
	}
}

// TestQuickAliasProperties: MustAlias implies MayAlias; both relations
// are symmetric — checked over all value pairs of a representative
// function.
func TestQuickAliasProperties(t *testing.T) {
	src := `
global @g [8]
global @h [4]

func @f(i64 %p, i64 %q, i64 %i) i64 {
e:
  %a = alloca 4
  %b = alloca 2
  %ga = global @g
  %ha = global @h
  %g1 = add %ga, 1
  %gi = add %ga, %i
  %a1 = add %a, 1
  %ai = add %a, %i
  %pi = add %p, %i
  %x = load %p
  %y = load %x
  %sum = add %y, %i
  ret %sum
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	ai := Compute(f)
	var addrs []*ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Type == ir.I64 {
				addrs = append(addrs, v)
			}
		}
	}
	for _, x := range addrs {
		for _, y := range addrs {
			may, mayR := ai.MayAlias(x, y), ai.MayAlias(y, x)
			must, mustR := ai.MustAlias(x, y), ai.MustAlias(y, x)
			if may != mayR {
				t.Fatalf("MayAlias(%s,%s) not symmetric", x, y)
			}
			if must != mustR {
				t.Fatalf("MustAlias(%s,%s) not symmetric", x, y)
			}
			if must && !may {
				t.Fatalf("MustAlias(%s,%s) without MayAlias", x, y)
			}
		}
		if !ai.MustAlias(x, x) {
			t.Fatalf("MustAlias(%s,%s) must be reflexive", x, x)
		}
	}
}
