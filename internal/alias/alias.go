// Package alias implements the base-object alias analysis the region
// construction relies on (the paper uses "LLVM's basic alias analysis
// infrastructure", §5; this is the equivalent for our IR).
//
// Every address-typed value is resolved to an abstract location: a base
// object (a specific alloca, a specific global, a pointer parameter, or
// unknown) plus an optional constant offset. Two addresses may alias only
// if their base objects may be the same memory object; they must alias if
// both base and offset are provably equal.
//
// The analysis also classifies storage for the paper's Table 2 split:
// registers and local stack ("pseudoregisters", compiler-controlled) vs
// heap, global and non-local stack ("memory", fixed by program semantics).
package alias

import (
	"idemproc/internal/ir"
)

// BaseKind discriminates base objects.
type BaseKind uint8

const (
	// BaseUnknown means the address could point anywhere non-local
	// (including escaped allocas).
	BaseUnknown BaseKind = iota
	// BaseAlloca is a specific stack allocation in this function.
	BaseAlloca
	// BaseGlobal is a specific module global.
	BaseGlobal
	// BaseParam is a pointer passed in by the caller: heap, global or a
	// caller frame ("non-local stack"). Distinct parameters may alias
	// each other and any global, but never a non-escaped local alloca.
	BaseParam
)

// Loc is an abstract location.
type Loc struct {
	Kind BaseKind
	// Obj identifies the base object: the OpAlloca or OpParam value, used
	// by identity. Nil for BaseUnknown.
	Obj *ir.Value
	// Global is the global's name for BaseGlobal.
	Global string
	// Off is the constant word offset from the base; valid only if
	// KnownOff.
	Off      int64
	KnownOff bool
}

// Info holds the per-function analysis results.
type Info struct {
	F *ir.Func
	// locs maps each I64 value to its abstract location.
	locs map[*ir.Value]Loc
	// escaped marks allocas whose address flows to memory, a call
	// argument, or a return value — they may then alias unknown pointers.
	escaped map[*ir.Value]bool
}

// Compute analyses f.
func Compute(f *ir.Func) *Info {
	in := &Info{F: f, locs: map[*ir.Value]Loc{}, escaped: map[*ir.Value]bool{}}
	in.resolveAll()
	in.computeEscapes()
	return in
}

// LocOf returns the abstract location of an address value.
func (in *Info) LocOf(addr *ir.Value) Loc { return in.resolve(addr, nil) }

func (in *Info) resolveAll() {
	for _, b := range in.F.Blocks {
		for _, v := range b.Instrs {
			if v.Type == ir.I64 {
				in.resolve(v, nil)
			}
		}
	}
}

func (in *Info) resolve(v *ir.Value, visiting map[*ir.Value]bool) Loc {
	if l, ok := in.locs[v]; ok {
		return l
	}
	if visiting == nil {
		visiting = map[*ir.Value]bool{}
	}
	if visiting[v] {
		// φ cycle: resolved by the caller's merge.
		return Loc{Kind: BaseUnknown}
	}
	visiting[v] = true
	var l Loc
	switch v.Op {
	case ir.OpAlloca:
		l = Loc{Kind: BaseAlloca, Obj: v, KnownOff: true}
	case ir.OpGlobal:
		l = Loc{Kind: BaseGlobal, Global: v.Aux, KnownOff: true}
	case ir.OpParam:
		l = Loc{Kind: BaseParam, Obj: v, KnownOff: true}
	case ir.OpCopy:
		l = in.resolve(v.Args[0], visiting)
	case ir.OpAdd, ir.OpSub:
		x, y := v.Args[0], v.Args[1]
		if c, ok := constOf(y); ok {
			l = in.resolve(x, visiting)
			if l.KnownOff {
				if v.Op == ir.OpAdd {
					l.Off += c
				} else {
					l.Off -= c
				}
			}
		} else if c, ok := constOf(x); ok && v.Op == ir.OpAdd {
			l = in.resolve(y, visiting)
			if l.KnownOff {
				l.Off += c
			}
		} else if v.Op == ir.OpAdd {
			// base + variable index: keep the base, lose the offset. When
			// one side is a concrete object (alloca/global) and the other
			// is param-derived or unknown, the concrete object is the
			// base and the other side an integer index — adding two
			// pointers has no meaning in this IR.
			lx := in.resolve(x, visiting)
			ly := in.resolve(y, visiting)
			concrete := func(l Loc) bool { return l.Kind == BaseAlloca || l.Kind == BaseGlobal }
			switch {
			case concrete(lx) && !concrete(ly):
				l = Loc{Kind: lx.Kind, Obj: lx.Obj, Global: lx.Global}
			case concrete(ly) && !concrete(lx):
				l = Loc{Kind: ly.Kind, Obj: ly.Obj, Global: ly.Global}
			case lx.Kind == BaseParam && ly.Kind == BaseUnknown:
				l = Loc{Kind: BaseParam, Obj: lx.Obj}
			case ly.Kind == BaseParam && lx.Kind == BaseUnknown:
				l = Loc{Kind: BaseParam, Obj: ly.Obj}
			default:
				l = Loc{Kind: BaseUnknown}
			}
		} else {
			l = Loc{Kind: BaseUnknown}
		}
	case ir.OpPhi:
		// Merge: same base across all inputs keeps the base.
		merged := Loc{}
		first := true
		for _, a := range v.Args {
			if a == nil {
				continue
			}
			la := in.resolve(a, visiting)
			if first {
				merged = la
				first = false
				continue
			}
			if !sameBase(merged, la) {
				merged = Loc{Kind: BaseUnknown}
				break
			}
			if !merged.KnownOff || !la.KnownOff || merged.Off != la.Off {
				merged.KnownOff = false
				merged.Off = 0
			}
		}
		l = merged
	default:
		l = Loc{Kind: BaseUnknown}
	}
	delete(visiting, v)
	in.locs[v] = l
	return l
}

func constOf(v *ir.Value) (int64, bool) {
	if v.Op == ir.OpConst && v.Type == ir.I64 {
		return v.ConstInt, true
	}
	return 0, false
}

func sameBase(a, b Loc) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case BaseAlloca, BaseParam:
		return a.Obj == b.Obj
	case BaseGlobal:
		return a.Global == b.Global
	}
	return true // both unknown
}

// computeEscapes finds allocas whose addresses leak: any value derived
// from the alloca by copy/φ/arithmetic that is stored *as data*, passed to
// a call, or returned marks the alloca escaped.
func (in *Info) computeEscapes() {
	// derived[v] = set of allocas v may carry the address of.
	derived := map[*ir.Value]map[*ir.Value]bool{}
	add := func(v, a *ir.Value) bool {
		s := derived[v]
		if s == nil {
			s = map[*ir.Value]bool{}
			derived[v] = s
		}
		if s[a] {
			return false
		}
		s[a] = true
		return true
	}
	for _, b := range in.F.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpAlloca {
				add(v, v)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range in.F.Blocks {
			for _, v := range b.Instrs {
				switch v.Op {
				case ir.OpCopy, ir.OpPhi, ir.OpAdd, ir.OpSub:
					for _, a := range v.Args {
						if a == nil {
							continue
						}
						for al := range derived[a] {
							if add(v, al) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	for _, b := range in.F.Blocks {
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpStore:
				for al := range derived[v.Args[1]] { // address stored as data
					in.escaped[al] = true
				}
			case ir.OpCall:
				for _, a := range v.Args {
					for al := range derived[a] {
						in.escaped[al] = true
					}
				}
			case ir.OpRet:
				for _, a := range v.Args {
					for al := range derived[a] {
						in.escaped[al] = true
					}
				}
			}
		}
	}
}

// Escaped reports whether the given alloca's address escapes the function.
func (in *Info) Escaped(alloca *ir.Value) bool { return in.escaped[alloca] }

// MayAlias reports whether the addresses a and b may refer to the same
// word of memory.
func (in *Info) MayAlias(a, b *ir.Value) bool {
	la, lb := in.LocOf(a), in.LocOf(b)
	return in.mayAliasLoc(la, lb)
}

func (in *Info) mayAliasLoc(la, lb Loc) bool {
	if la.Kind == BaseUnknown || lb.Kind == BaseUnknown {
		// Unknown aliases everything except non-escaped allocas.
		other := lb
		if lb.Kind == BaseUnknown {
			other = la
		}
		if other.Kind == BaseAlloca && !in.escaped[other.Obj] {
			return false
		}
		return true
	}
	if la.Kind != lb.Kind {
		// Alloca never aliases a distinct-kind base unless escaped and
		// the other side is param-like.
		if la.Kind == BaseAlloca || lb.Kind == BaseAlloca {
			al := la
			other := lb
			if lb.Kind == BaseAlloca {
				al, other = lb, la
			}
			return in.escaped[al.Obj] && other.Kind == BaseParam
		}
		// Param may alias globals (caller could pass &global).
		return true
	}
	switch la.Kind {
	case BaseAlloca:
		if la.Obj != lb.Obj {
			return false
		}
	case BaseGlobal:
		if la.Global != lb.Global {
			return false
		}
	case BaseParam:
		if la.Obj != lb.Obj {
			return true // two different pointer params may overlap
		}
	}
	// Same base: distinct known offsets don't alias.
	if la.KnownOff && lb.KnownOff && la.Off != lb.Off {
		return false
	}
	return true
}

// MustAlias reports whether a and b provably refer to the same word.
func (in *Info) MustAlias(a, b *ir.Value) bool {
	if a == b {
		return true
	}
	la, lb := in.LocOf(a), in.LocOf(b)
	if la.Kind == BaseUnknown || lb.Kind == BaseUnknown {
		return false
	}
	if !sameBase(la, lb) {
		return false
	}
	if la.Kind == BaseParam && la.Obj != lb.Obj {
		return false
	}
	return la.KnownOff && lb.KnownOff && la.Off == lb.Off
}

// StorageClass names the Table 2 category of an address for reporting.
type StorageClass uint8

const (
	// StorageLocalStack is function-local stack memory (non-escaped
	// alloca) — a compiler-controlled "pseudoregister" resource.
	StorageLocalStack StorageClass = iota
	// StorageMemory is heap, global or non-local stack memory — fixed by
	// program semantics.
	StorageMemory
)

func (s StorageClass) String() string {
	if s == StorageLocalStack {
		return "local-stack"
	}
	return "memory"
}

// ClassOf classifies the storage an address refers to.
func (in *Info) ClassOf(addr *ir.Value) StorageClass {
	l := in.LocOf(addr)
	if l.Kind == BaseAlloca && !in.escaped[l.Obj] {
		return StorageLocalStack
	}
	return StorageMemory
}
