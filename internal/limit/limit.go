// Package limit implements the paper's §3 limit study: how long would
// idempotent paths be given perfect runtime information?
//
// A Tracker observes the execution of a conventionally compiled binary
// and, per category, detects dynamic clobber antidependences — a write to
// a location that was read earlier in the current region without an
// intervening write. Each clobber ends the current idempotent path; path
// lengths are measured in executed instructions, "optimistically ... in
// the absence of explicit (static) region markings", exactly like the
// paper's gem5 measurement.
//
// Three categories mirror Figure 4:
//
//	Semantic           — clobbers on heap/global/non-local-stack memory
//	                     only; calls are crossed freely (the optimistic
//	                     inter-procedural variant, which also ignores
//	                     calling-convention antidependences).
//	SemanticCalls      — the same, with regions additionally split at
//	                     call and return boundaries (what an
//	                     intra-procedural compiler can hope for).
//	SemanticArtificial — additionally counts artificial clobbers: on
//	                     registers and on local stack slots (register
//	                     spills) — what a conventional compiler actually
//	                     delivers.
package limit

import (
	"idemproc/internal/isa"
	"idemproc/internal/machine"
)

// Category indexes the three measurement modes.
type Category int

const (
	// Semantic is the inter-procedural semantic-clobbers-only limit.
	Semantic Category = iota
	// SemanticCalls splits regions at call boundaries too.
	SemanticCalls
	// SemanticArtificial adds register and spill-slot clobbers.
	SemanticArtificial
	numCategories
)

func (c Category) String() string {
	switch c {
	case Semantic:
		return "semantic"
	case SemanticCalls:
		return "semantic+calls"
	case SemanticArtificial:
		return "semantic+calls+artificial"
	}
	return "?"
}

// accessState is the per-location per-region state machine.
type accessState uint8

const (
	stNone accessState = iota
	stReadClean
	stWritten
)

// catState is one category's tracking state.
type catState struct {
	epoch    int64
	memEpoch map[int64]int64
	memState map[int64]accessState
	regEpoch [48]int64
	regState [48]accessState
	pathLen  int64
	sumLen   int64
	numPaths int64
	maxLen   int64
}

func (cs *catState) endPath() {
	if cs.pathLen > 0 {
		cs.sumLen += cs.pathLen
		cs.numPaths++
		if cs.pathLen > cs.maxLen {
			cs.maxLen = cs.pathLen
		}
	}
	cs.pathLen = 0
	cs.epoch++
}

func (cs *catState) memAccess(addr int64, write bool) bool {
	st := cs.memState[addr]
	if cs.memEpoch[addr] != cs.epoch {
		cs.memEpoch[addr] = cs.epoch
		st = stNone
	}
	st, clobber := transition(st, write)
	cs.memState[addr] = st
	return clobber
}

// transition advances the per-location state machine; reports a clobber
// (a write to a location read earlier in the region with no intervening
// write — the paper's "antidependence after the absence of a flow
// dependence").
func transition(st accessState, write bool) (accessState, bool) {
	if write {
		if st == stReadClean {
			return st, true
		}
		return stWritten, false
	}
	if st == stNone {
		return stReadClean, false
	}
	return st, false
}

func (cs *catState) regAccess(r isa.Reg, write bool) bool {
	i := int(r)
	if cs.regEpoch[i] != cs.epoch {
		cs.regEpoch[i] = cs.epoch
		cs.regState[i] = stNone
	}
	st, clobber := transition(cs.regState[i], write)
	cs.regState[i] = st
	return clobber
}

// memClass distinguishes local stack (current frame) from semantic memory.
type memClass uint8

const (
	memSemantic memClass = iota
	memLocalStack
)

// Tracker implements machine.Tracer for the limit study.
type Tracker struct {
	cats [numCategories]*catState
	// frameBases tracks sp at each function entry; the current frame is
	// [sp, top of frameBases).
	frameBases  []uint64
	pendingCall bool
}

var _ machine.Tracer = (*Tracker)(nil)

// NewTracker creates a tracker; attach it via machine.Config.Tracer and
// run the conventional binary.
func NewTracker() *Tracker {
	t := &Tracker{}
	for i := range t.cats {
		t.cats[i] = &catState{
			epoch:    1,
			memEpoch: map[int64]int64{},
			memState: map[int64]accessState{},
		}
	}
	return t
}

// Call records a function call: the next instruction's sp is the callee's
// frame top.
func (t *Tracker) Call() {
	t.pendingCall = true
	t.cats[SemanticCalls].endPath()
	t.cats[SemanticArtificial].endPath()
}

// Ret records a function return.
func (t *Tracker) Ret() {
	if len(t.frameBases) > 0 {
		t.frameBases = t.frameBases[:len(t.frameBases)-1]
	}
	t.cats[SemanticCalls].endPath()
	t.cats[SemanticArtificial].endPath()
}

func (t *Tracker) classify(addr int64, sp uint64) memClass {
	top := ^uint64(0)
	if len(t.frameBases) > 0 {
		top = t.frameBases[len(t.frameBases)-1]
	}
	if uint64(addr) >= sp && uint64(addr) < top {
		return memLocalStack
	}
	return memSemantic
}

// Instr observes one executed instruction.
func (t *Tracker) Instr(in isa.Instr, memAddr int64, sp uint64) {
	if t.pendingCall {
		// First instruction after CALL: sp is still the caller's; the
		// callee prologue adjusts it next. Record the frame top.
		t.frameBases = append(t.frameBases, sp)
		t.pendingCall = false
	}
	if in.Shadow > 0 {
		return
	}

	// Clobber detection first: a clobbering write starts the NEW path (a
	// cut is placed before the write), so the instruction is counted
	// after any path it ends.

	// Memory accesses.
	switch in.Op {
	case isa.LDR, isa.FLDR:
		t.memAccess(memAddr, sp, false)
	case isa.STR, isa.FSTR:
		t.memAccess(memAddr, sp, true)
	}

	// Register accesses (artificial category only). The stack pointer,
	// link register and rp belong to the calling convention, which the
	// paper's study explicitly sets aside.
	cs := t.cats[SemanticArtificial]
	var buf [2]isa.Reg
	for _, r := range srcRegsOf(in, buf[:0]) {
		if conventionReg(r) {
			continue
		}
		cs.regAccess(r, false) // reads never clobber
	}
	if wRd := writesRegOf(in); wRd {
		if !conventionReg(in.Rd) && cs.regAccess(in.Rd, true) {
			cs.endPath()
			// The clobbering write opens the new region with the
			// location in written state.
			cs.regAccess(in.Rd, true)
		}
	}

	for c := Category(0); c < numCategories; c++ {
		t.cats[c].pathLen++
	}
}

func (t *Tracker) memAccess(addr int64, sp uint64, write bool) {
	class := t.classify(addr, sp)
	for c := Category(0); c < numCategories; c++ {
		cs := t.cats[c]
		track := false
		switch class {
		case memSemantic:
			track = true
		case memLocalStack:
			// Local frame traffic is compiler-controlled: ignored by the
			// semantic categories (the paper's optimistic assumption that
			// call frames don't overwrite), artificial in the third.
			track = c == SemanticArtificial
		}
		if !track {
			continue
		}
		if cs.memAccess(addr, write) {
			cs.endPath()
			cs.memAccess(addr, write)
		}
	}
}

func conventionReg(r isa.Reg) bool {
	return r == isa.SP || r == isa.LR || r == isa.RP
}

// Result summarizes one category's measurement.
type Result struct {
	Category Category
	// AvgPathLen is the mean dynamic idempotent path length.
	AvgPathLen float64
	// Paths is the number of completed paths; MaxPathLen the longest.
	Paths      int64
	MaxPathLen int64
}

// Results finalizes and returns all three categories (open paths are
// closed first).
func (t *Tracker) Results() [3]Result {
	var out [3]Result
	for c := Category(0); c < numCategories; c++ {
		cs := t.cats[c]
		cs.endPath()
		r := Result{Category: c, Paths: cs.numPaths, MaxPathLen: cs.maxLen}
		if cs.numPaths > 0 {
			r.AvgPathLen = float64(cs.sumLen) / float64(cs.numPaths)
		}
		out[c] = r
	}
	return out
}

// srcRegsOf mirrors the pipeline model's source-register extraction.
func srcRegsOf(in isa.Instr, buf []isa.Reg) []isa.Reg {
	switch in.Op {
	case isa.NOP, isa.MOVI, isa.FMOVI, isa.B, isa.CALL, isa.HALT, isa.MARK:
		return buf
	case isa.RET:
		return buf
	case isa.CBZ, isa.CBNZ, isa.CHECK:
		return append(buf, in.Rs1)
	case isa.MAJ:
		return append(buf, in.Rd)
	case isa.STR, isa.FSTR:
		return append(buf, in.Rs1, in.Rs2)
	case isa.LDR, isa.FLDR:
		return append(buf, in.Rs1)
	default:
		buf = append(buf, in.Rs1)
		if hasTwoSources(in.Op) {
			buf = append(buf, in.Rs2)
		}
		return buf
	}
}

func hasTwoSources(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.ORR, isa.EOR,
		isa.LSL, isa.ASR, isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV,
		isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE:
		return true
	}
	return false
}

func writesRegOf(in isa.Instr) bool {
	switch in.Op {
	case isa.NOP, isa.STR, isa.FSTR, isa.B, isa.CBZ, isa.CBNZ,
		isa.CALL, isa.RET, isa.HALT, isa.MARK, isa.CHECK, isa.MAJ:
		return false
	}
	return true
}
