package limit

import (
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/isa"
	"idemproc/internal/machine"
)

// feed pushes a synthetic instruction stream through a tracker.
func feed(t *Tracker, ins ...isa.Instr) {
	for _, in := range ins {
		addr := int64(0)
		if in.IsMem() {
			addr = in.Imm // tests encode the address in Imm
		}
		t.Instr(in, addr, 1<<40)
	}
}

func ldr(addr int64) isa.Instr { return isa.Instr{Op: isa.LDR, Rd: isa.R1, Rs1: isa.R0, Imm: addr} }
func str(addr int64) isa.Instr { return isa.Instr{Op: isa.STR, Rs1: isa.R0, Rs2: isa.R2, Imm: addr} }
func alu(rd, rs isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.ADD, Rd: rd, Rs1: rs, Rs2: rs}
}

func TestMemoryClobberEndsPath(t *testing.T) {
	tr := NewTracker()
	// read 100; write 100 → clobber in all categories.
	feed(tr, ldr(100), str(100))
	res := tr.Results()
	for c := Semantic; c <= SemanticArtificial; c++ {
		if res[c].Paths != 2 {
			t.Fatalf("%v: paths = %d, want 2 (one ended by the clobber, one at exit)", c, res[c].Paths)
		}
	}
}

func TestWriteBeforeReadIsNoClobber(t *testing.T) {
	tr := NewTracker()
	// write 100; read 100; write 100 → flow precedes the WAR: no clobber.
	feed(tr, str(100), ldr(100), str(100))
	res := tr.Results()
	if res[Semantic].Paths != 1 {
		t.Fatalf("paths = %d, want 1 (no clobber)", res[Semantic].Paths)
	}
	if res[Semantic].AvgPathLen != 3 {
		t.Fatalf("avg = %f, want 3", res[Semantic].AvgPathLen)
	}
}

func TestRegisterClobberOnlyInArtificial(t *testing.T) {
	tr := NewTracker()
	// r2 := r3 (r3 read); r3 := r4 (r3 overwritten after read, never
	// written first) → artificial clobber only.
	feed(tr,
		isa.Instr{Op: isa.MOV, Rd: isa.R2, Rs1: isa.R3},
		isa.Instr{Op: isa.MOV, Rd: isa.R3, Rs1: isa.R4},
	)
	res := tr.Results()
	if res[Semantic].Paths != 1 || res[SemanticCalls].Paths != 1 {
		t.Fatal("register clobber must not end semantic paths")
	}
	if res[SemanticArtificial].Paths != 2 {
		t.Fatalf("artificial paths = %d, want 2", res[SemanticArtificial].Paths)
	}
}

func TestCallsSplitMiddleCategory(t *testing.T) {
	tr := NewTracker()
	feed(tr, alu(isa.R1, isa.R0))
	tr.Call()
	feed(tr, alu(isa.R2, isa.R0))
	tr.Ret()
	feed(tr, alu(isa.R3, isa.R0))
	res := tr.Results()
	if res[Semantic].Paths != 1 {
		t.Fatalf("semantic paths = %d, want 1 (calls crossed freely)", res[Semantic].Paths)
	}
	if res[SemanticCalls].Paths != 3 {
		t.Fatalf("semantic+calls paths = %d, want 3", res[SemanticCalls].Paths)
	}
}

func TestConventionRegistersIgnored(t *testing.T) {
	tr := NewTracker()
	// sp arithmetic looks like read-modify-write but is calling
	// convention: ignored in all categories.
	feed(tr,
		isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -4},
		isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: 4},
	)
	res := tr.Results()
	if res[SemanticArtificial].Paths != 1 {
		t.Fatalf("sp updates must not clobber; paths = %d", res[SemanticArtificial].Paths)
	}
}

func TestLocalStackOnlyArtificial(t *testing.T) {
	tr := NewTracker()
	// Simulate entering a function: frame [90, 100).
	tr.Call()
	// First instruction after the call carries the caller's sp (=100).
	tr.Instr(alu(isa.R1, isa.R0), 0, 100)
	// Read then write a local slot at address 95 with sp=90.
	tr.Instr(isa.Instr{Op: isa.LDR, Rd: isa.R2, Rs1: isa.R0, Imm: 0}, 95, 90)
	tr.Instr(isa.Instr{Op: isa.STR, Rs1: isa.R0, Rs2: isa.R3, Imm: 0}, 95, 90)
	res := tr.Results()
	// Local-stack clobber: artificial only.
	if res[Semantic].Paths != 1 {
		t.Fatalf("local-stack clobber leaked into semantic: %d paths", res[Semantic].Paths)
	}
	if res[SemanticArtificial].Paths < 2 {
		t.Fatalf("artificial must see the spill-slot clobber: %d paths", res[SemanticArtificial].Paths)
	}
}

func TestNonLocalStackIsSemantic(t *testing.T) {
	tr := NewTracker()
	tr.Call()
	tr.Instr(alu(isa.R1, isa.R0), 0, 100)
	// Address 150 is above the frame top (100): an ancestor frame —
	// semantic memory.
	tr.Instr(isa.Instr{Op: isa.LDR, Rd: isa.R2, Rs1: isa.R0, Imm: 0}, 150, 90)
	tr.Instr(isa.Instr{Op: isa.STR, Rs1: isa.R0, Rs2: isa.R3, Imm: 0}, 150, 90)
	res := tr.Results()
	if res[Semantic].Paths != 2 {
		t.Fatalf("non-local stack clobber must end semantic paths: %d", res[Semantic].Paths)
	}
}

// TestEndToEndOrdering: on a real workload-style program, the category
// averages must be ordered semantic ≥ semantic+calls ≥ artificial.
func TestEndToEndOrdering(t *testing.T) {
	src := `
global @g [64]

func @main(i64 %n) i64 {
e:
  %gb = global @g
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %idx = rem %i, 64
  %p = add %gb, %idx
  %x = load %p
  %y = add %x, %i
  store %p, %y
  %acc2 = add %acc, %y
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`
	m := ir.MustParse(src)
	p, _, err := codegen.CompileModule(m, "main", 4096, false, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker()
	mach := machine.New(p, machine.Config{Tracer: tr})
	if _, err := mach.Run(500); err != nil {
		t.Fatal(err)
	}
	res := tr.Results()
	if !(res[Semantic].AvgPathLen >= res[SemanticCalls].AvgPathLen) {
		t.Fatalf("semantic (%.1f) < semantic+calls (%.1f)", res[Semantic].AvgPathLen, res[SemanticCalls].AvgPathLen)
	}
	if !(res[SemanticCalls].AvgPathLen >= res[SemanticArtificial].AvgPathLen) {
		t.Fatalf("semantic+calls (%.1f) < artificial (%.1f)", res[SemanticCalls].AvgPathLen, res[SemanticArtificial].AvgPathLen)
	}
	// The load-modify-store loop clobbers g[i%64] once per revisit, so
	// semantic paths are finite and shorter than the whole run.
	if res[SemanticCalls].Paths < 2 {
		t.Fatal("expected multiple semantic paths in a read-modify-write loop")
	}
	if res[Semantic].MaxPathLen <= 0 {
		t.Fatal("max path length not tracked")
	}
}

func TestCategoryStrings(t *testing.T) {
	if Semantic.String() == "?" || SemanticCalls.String() == "?" || SemanticArtificial.String() == "?" {
		t.Fatal("category strings missing")
	}
}
