// Package chaos is a seeded HTTP fault-injection layer for exercising
// the resilience stack against a real idemd. It wraps a handler (or
// fronts a live server as a reverse proxy) and injects transport-level
// faults — added latency, 500 responses, connection resets, truncated
// bodies — at configurable per-path rates.
//
// Every fault decision is drawn from a splitmix64 stream seeded by
// (Config.Seed, request sequence number), so a campaign is replayable:
// the same seed over the same serialized request sequence injects the
// same faults. Under concurrency the assignment of sequence numbers to
// requests races, but the *number* of each fault kind injected — and,
// with retries enabled, the converged campaign outcome — is still
// seed-reproducible, which is what the end-to-end chaos tests pin.
package chaos

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// Rates sets per-kind fault probabilities in [0, 1]. Faults are rolled
// in a fixed order (reset, error, truncate, latency) from one
// per-request stream; at most one of reset/error/truncate fires per
// request, while latency can combine with a clean response.
type Rates struct {
	// Latency is the probability of delaying the request by a duration
	// drawn uniformly from [LatencyMin, LatencyMax].
	Latency    float64
	LatencyMin time.Duration // default 1ms
	LatencyMax time.Duration // default 25ms
	// Error500 is the probability of replying 500 without reaching the
	// wrapped handler.
	Error500 float64
	// Reset is the probability of aborting the connection before any
	// response bytes (the client sees a connection reset / EOF).
	Reset float64
	// Truncate is the probability of sending a response whose body stops
	// short of its declared Content-Length.
	Truncate float64
}

func (r Rates) withDefaults() Rates {
	if r.LatencyMin <= 0 {
		r.LatencyMin = time.Millisecond
	}
	if r.LatencyMax < r.LatencyMin {
		r.LatencyMax = 25 * time.Millisecond
	}
	return r
}

// Config seeds and shapes an Injector.
type Config struct {
	// Seed drives every fault decision. The same seed replays the same
	// fault schedule over the same request sequence.
	Seed uint64
	// Default applies to paths without a PerPath override.
	Default Rates
	// PerPath overrides rates for exact request paths (e.g. keep
	// /metrics clean while /v1/simulate takes faults).
	PerPath map[string]Rates
}

// Counters tallies injected faults, readable mid-campaign.
type Counters struct {
	Requests  int64 `json:"requests"`
	Latencies int64 `json:"latencies"`
	Errors500 int64 `json:"errors_500"`
	Resets    int64 `json:"resets"`
	Truncates int64 `json:"truncates"`
}

// Injector is the fault-injecting middleware. Build with Wrap.
type Injector struct {
	cfg  Config
	next http.Handler
	seq  atomic.Uint64

	requests  atomic.Int64
	latencies atomic.Int64
	errors500 atomic.Int64
	resets    atomic.Int64
	truncates atomic.Int64
}

// Wrap returns an Injector that filters traffic to next.
func Wrap(next http.Handler, cfg Config) *Injector {
	cfg.Default = cfg.Default.withDefaults()
	for p, r := range cfg.PerPath {
		cfg.PerPath[p] = r.withDefaults()
	}
	return &Injector{cfg: cfg, next: next}
}

// Counters snapshots the fault tally.
func (in *Injector) Counters() Counters {
	return Counters{
		Requests:  in.requests.Load(),
		Latencies: in.latencies.Load(),
		Errors500: in.errors500.Load(),
		Resets:    in.resets.Load(),
		Truncates: in.truncates.Load(),
	}
}

// splitmix64 — the repo's standard seeded generator (idemload's request
// mix, resilience's jitter), so one seed namespace covers the campaign.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a tiny per-request PRNG: state advances one mix per draw.
type stream struct{ state uint64 }

func (s *stream) next() uint64 {
	s.state = mix(s.state)
	return s.state
}

// roll draws a uniform float in [0, 1).
func (s *stream) roll() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	in.requests.Add(1)
	rates, ok := in.cfg.PerPath[r.URL.Path]
	if !ok {
		rates = in.cfg.Default
	}
	// One stream per request, keyed by (seed, sequence). All draws
	// happen in a fixed order regardless of which rates are zero, so
	// enabling one fault kind never perturbs another kind's schedule.
	st := &stream{state: mix(in.cfg.Seed) ^ in.seq.Add(1)}
	resetRoll := st.roll()
	errorRoll := st.roll()
	truncateRoll := st.roll()
	latencyRoll := st.roll()
	latencyFrac := st.roll()

	if rates.Latency > 0 && latencyRoll < rates.Latency {
		in.latencies.Add(1)
		span := rates.LatencyMax - rates.LatencyMin
		time.Sleep(rates.LatencyMin + time.Duration(latencyFrac*float64(span)))
	}

	switch {
	case rates.Reset > 0 && resetRoll < rates.Reset:
		in.resets.Add(1)
		// net/http aborts the connection without a response; the client
		// observes a reset/EOF mid-request.
		panic(http.ErrAbortHandler)
	case rates.Error500 > 0 && errorRoll < rates.Error500:
		in.errors500.Add(1)
		http.Error(w, "chaos: injected server error", http.StatusInternalServerError)
		return
	case rates.Truncate > 0 && truncateRoll < rates.Truncate:
		in.truncates.Add(1)
		in.truncate(w, r)
		return
	}
	in.next.ServeHTTP(w, r)
}

// truncate runs the wrapped handler into a buffer, declares the full
// Content-Length, writes only half the body, and aborts — the client
// sees a well-formed header followed by an unexpected EOF.
func (in *Injector) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &recorder{header: http.Header{}, code: http.StatusOK}
	in.next.ServeHTTP(rec, r)
	body := rec.body
	if len(body) < 2 {
		// Nothing worth cutting; degrade to a reset.
		panic(http.ErrAbortHandler)
	}
	h := w.Header()
	for k, vs := range rec.header {
		h[k] = vs
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.code)
	w.Write(body[:len(body)/2])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// recorder captures the wrapped handler's full response for truncation.
type recorder struct {
	header http.Header
	code   int
	body   []byte
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(c int)   { r.code = c }
func (r *recorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// Proxy fronts a live HTTP server with an Injector, so any idemd — in
// or out of process — can be chaos-tested without linking this package.
type Proxy struct {
	inj *Injector
	l   net.Listener
	srv *http.Server
}

// NewProxy listens on 127.0.0.1:0 and forwards faulted traffic to
// target (a host:port). Close releases the listener.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	u, err := url.Parse("http://" + target)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad target %q: %w", target, err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	// Proxy errors (canceled clients, aborted hedges) are expected
	// campaign events, not log-worthy.
	rp.ErrorLog = log.New(io.Discard, "", 0)
	inj := Wrap(rp, cfg)
	p := &Proxy{
		inj: inj,
		l:   l,
		srv: &http.Server{Handler: inj},
	}
	go p.srv.Serve(l)
	return p, nil
}

// Addr is the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Counters snapshots the proxy's fault tally.
func (p *Proxy) Counters() Counters { return p.inj.Counters() }

// Close force-closes the proxy listener and connections.
func (p *Proxy) Close() error { return p.srv.Close() }
