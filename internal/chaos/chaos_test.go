package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okHandler replies 200 with a fixed body.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "payload-0123456789-payload")
	})
}

// TestReset: at rate 1.0 every request dies with a transport error
// before any response.
func TestReset(t *testing.T) {
	inj := Wrap(okHandler(), Config{Seed: 1, Default: Rates{Reset: 1}})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("got status %d, want transport error", resp.StatusCode)
	}
	if got := inj.Counters().Resets; got != 1 {
		t.Errorf("resets = %d, want 1", got)
	}
}

// TestError500: at rate 1.0 every request gets an injected 500 and the
// wrapped handler never runs.
func TestError500(t *testing.T) {
	reached := false
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { reached = true })
	inj := Wrap(next, Config{Seed: 1, Default: Rates{Error500: 1}})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if reached {
		t.Error("wrapped handler ran despite injected 500")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "chaos: injected") {
		t.Errorf("body %q does not identify the injection", body)
	}
}

// TestTruncate: the client sees valid headers with the full
// Content-Length but the body stops short (unexpected EOF).
func TestTruncate(t *testing.T) {
	inj := Wrap(okHandler(), Config{Seed: 1, Default: Rates{Truncate: 1}})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (truncation is a body fault)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %q cleanly, want unexpected EOF", body)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") {
		t.Errorf("err = %v, want an EOF-shaped error", err)
	}
	if len(body) >= len("payload-0123456789-payload") {
		t.Errorf("got %d body bytes, want a truncated prefix", len(body))
	}
}

// TestLatency: at rate 1.0 requests are delayed by at least LatencyMin.
func TestLatency(t *testing.T) {
	inj := Wrap(okHandler(), Config{Seed: 1, Default: Rates{
		Latency: 1, LatencyMin: 20 * time.Millisecond, LatencyMax: 30 * time.Millisecond,
	}})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("request took %v, want >= 20ms injected latency", d)
	}
	if got := inj.Counters().Latencies; got != 1 {
		t.Errorf("latencies = %d, want 1", got)
	}
}

// TestPerPathOverride: /metrics stays clean while the default path
// takes 100% faults.
func TestPerPathOverride(t *testing.T) {
	inj := Wrap(okHandler(), Config{
		Seed:    1,
		Default: Rates{Error500: 1},
		PerPath: map[string]Rates{"/metrics": {}},
	})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics status = %d, want clean 200", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("default path status = %d, want injected 500", resp.StatusCode)
	}
}

// TestDeterministicSchedule: two injectors with the same seed make the
// same fault decisions for the same request sequence; a different seed
// diverges somewhere.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) []int {
		inj := Wrap(okHandler(), Config{Seed: seed, Default: Rates{Error500: 0.4}})
		srv := httptest.NewServer(inj)
		defer srv.Close()
		var codes []int
		for i := 0; i < 40; i++ {
			resp, err := http.Get(srv.URL + "/x")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Errorf("seeds 7 and 8 produced identical 40-request schedules")
	}
}

// TestProxyPassThrough: a zero-rate proxy forwards bodies unchanged.
func TestProxyPassThrough(t *testing.T) {
	backend := httptest.NewServer(okHandler())
	defer backend.Close()

	p, err := NewProxy(strings.TrimPrefix(backend.URL, "http://"), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := http.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "payload-0123456789-payload" {
		t.Errorf("proxied body = %q", body)
	}
	if got := p.Counters().Requests; got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
}
