package dataflow

import (
	"testing"

	"idemproc/internal/alias"
	"idemproc/internal/ir"
)

func valueByName(f *ir.Func, name string) *ir.Value {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

func storeIn(f *ir.Func, blockName string) *ir.Value {
	for _, b := range f.Blocks {
		if b.Name != blockName {
			continue
		}
		for _, v := range b.Instrs {
			if v.Op == ir.OpStore {
				return v
			}
		}
	}
	return nil
}

const warSrc = `
global @g [4]

func @f(i64 %n) i64 {
e:
  %ga = global @g
  %x = load %ga       ; read g[0]
  br next
next:
  %y = add %x, 1
  store %ga, %y       ; write g[0]: WAR with the load
  ret %y
}
`

func TestMemoryAntidepsSimple(t *testing.T) {
	m := ir.MustParse(warSrc)
	f := m.Func("f")
	ai := alias.Compute(f)
	reach := ComputeReach(f)
	deps := MemoryAntideps(f, ai, reach)
	if len(deps) != 1 {
		t.Fatalf("got %d antideps, want 1", len(deps))
	}
	d := deps[0]
	if d.Read != valueByName(f, "x") || d.Write != storeIn(f, "next") {
		t.Fatal("antidep endpoints wrong")
	}
	if !d.MustAliasPair {
		t.Fatal("same-address WAR should be must-alias")
	}
}

func TestNoAntidepWhenWriteBeforeRead(t *testing.T) {
	src := `
global @g [4]

func @f() i64 {
e:
  %ga = global @g
  store %ga, 5
  %x = load %ga
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	deps := MemoryAntideps(f, alias.Compute(f), ComputeReach(f))
	if len(deps) != 0 {
		t.Fatalf("store-then-load in straight line is RAW, not WAR; got %d antideps", len(deps))
	}
}

func TestLoopCarriedAntidep(t *testing.T) {
	// In a loop, a store earlier in the block than the load still forms a
	// WAR via the back edge (write of iteration i+1 follows read of i).
	src := `
global @g [4]

func @f(i64 %n) i64 {
e:
  %ga = global @g
  br l
l:
  %i = phi [e: 0], [l: %i2]
  store %ga, %i
  %x = load %ga
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	deps := MemoryAntideps(f, alias.Compute(f), ComputeReach(f))
	if len(deps) != 1 {
		t.Fatalf("got %d antideps, want 1 (loop-carried)", len(deps))
	}
}

func TestNoAliasNoAntidep(t *testing.T) {
	src := `
global @g [4]
global @h [4]

func @f() i64 {
e:
  %ga = global @g
  %ha = global @h
  %x = load %ga
  store %ha, 1
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	deps := MemoryAntideps(f, alias.Compute(f), ComputeReach(f))
	if len(deps) != 0 {
		t.Fatalf("got %d antideps across distinct globals, want 0", len(deps))
	}
}

func TestReachQueries(t *testing.T) {
	src := `
func @f(i64 %c) i64 {
e:
  %a = add %c, 1
  condbr %c, t, u
t:
  %b = add %a, 2
  br j
u:
  %d = add %a, 3
  br j
j:
  %r = phi [t: %b], [u: %d]
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	reach := ComputeReach(f)
	v := func(n string) *ir.Value { return valueByName(f, n) }
	if !reach.Reaches(v("a"), v("b")) || !reach.Reaches(v("a"), v("r")) {
		t.Fatal("forward reachability missing")
	}
	if reach.Reaches(v("b"), v("d")) || reach.Reaches(v("d"), v("b")) {
		t.Fatal("sibling branches must not reach each other")
	}
	if reach.Reaches(v("r"), v("a")) {
		t.Fatal("no backward reachability in a DAG")
	}
	if reach.Reaches(v("a"), v("a")) {
		t.Fatal("acyclic self-reachability should be false")
	}
}

func TestReachSelfInLoop(t *testing.T) {
	src := `
func @f(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %i2
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	reach := ComputeReach(f)
	i2 := valueByName(f, "i2")
	if !reach.Reaches(i2, i2) {
		t.Fatal("instruction in a loop must reach itself via the back edge")
	}
}

func TestLiveness(t *testing.T) {
	src := `
func @f(i64 %n) i64 {
e:
  %a = add %n, 1
  %b = add %n, 2
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %i2 = add %i, %a
  %c = lt %i2, %n
  condbr %c, l, d
d:
  %r = add %i2, %b
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	lv := ComputeLiveness(f)
	blk := func(name string) *ir.Block {
		for _, b := range f.Blocks {
			if b.Name == name {
				return b
			}
		}
		return nil
	}
	v := func(n string) *ir.Value { return valueByName(f, n) }
	l, d := blk("l"), blk("d")
	if !lv.LiveIn(l, v("a")) {
		t.Fatal("a must be live-in to loop")
	}
	if !lv.LiveIn(l, v("b")) {
		t.Fatal("b must be live-in to loop (used after it)")
	}
	if !lv.LiveOut(l, v("i2")) {
		t.Fatal("i2 must be live-out of loop (φ use + d use)")
	}
	if lv.LiveOut(d, v("r")) {
		t.Fatal("nothing is live-out of the exit block")
	}
	if lv.LiveIn(d, v("a")) {
		t.Fatal("a is dead after the loop")
	}

	pos := IndexPositions(f)
	// b is live at the head of l.
	if !lv.LiveAt(l, 0, v("b"), pos) {
		t.Fatal("LiveAt: b live at loop head")
	}
	// n is live right before %c (used by it); a is live (loop back edge).
	cPos := pos[v("c")]
	if !lv.LiveAt(l, cPos, v("n"), pos) {
		t.Fatal("LiveAt: n live before its use")
	}
}

func TestEscapedAllocaAntidep(t *testing.T) {
	// A pointer loaded from memory may point into an escaped alloca, so a
	// store through it forms an antidep with a load of the alloca.
	src := `
global @cell [1]

func @f() i64 {
e:
  %a = alloca 1
  %cp = global @cell
  store %cp, %a
  %x = load %a
  %up = load %cp
  store %up, 9
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	deps := MemoryAntideps(f, alias.Compute(f), ComputeReach(f))
	found := false
	for _, d := range deps {
		if d.Read == valueByName(f, "x") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing antidep between alloca load and unknown-pointer store")
	}
}
