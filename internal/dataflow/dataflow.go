// Package dataflow provides the data-dependence analyses behind the
// paper's region construction: liveness, instruction-level reachability,
// and memory antidependence extraction (§2.1, §4.2.1).
//
// An antidependence is a write-after-read (WAR) pair. After the program
// transformations of §4.1 (SSA conversion + redundancy elimination), the
// surviving memory antidependences are exactly the potential clobber
// antidependences the region construction must cut.
package dataflow

import (
	"idemproc/internal/alias"
	"idemproc/internal/ir"
)

// Positions indexes every instruction's block-local position for
// intra-block ordering queries.
type Positions map[*ir.Value]int

// IndexPositions computes block-local instruction positions.
func IndexPositions(f *ir.Func) Positions {
	pos := Positions{}
	for _, b := range f.Blocks {
		for i, v := range b.Instrs {
			pos[v] = i
		}
	}
	return pos
}

// Reach answers instruction-level reachability queries: whether control
// can flow from one instruction to another along a path of at least one
// step.
type Reach struct {
	pos Positions
	// blockReach[i][j]: path of ≥1 edge from block i to block j.
	blockReach [][]bool
}

// ComputeReach builds the reachability index for f.
func ComputeReach(f *ir.Func) *Reach {
	f.Renumber()
	n := len(f.Blocks)
	r := &Reach{pos: IndexPositions(f), blockReach: make([][]bool, n)}
	for i := range r.blockReach {
		r.blockReach[i] = make([]bool, n)
	}
	// DFS from each block's successors.
	for _, b := range f.Blocks {
		var stack []*ir.Block
		for _, s := range b.Succs {
			if !r.blockReach[b.Index][s.Index] {
				r.blockReach[b.Index][s.Index] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range x.Succs {
				if !r.blockReach[b.Index][s.Index] {
					r.blockReach[b.Index][s.Index] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return r
}

// Reaches reports whether control can flow from instruction a to
// instruction b taking at least one step.
func (r *Reach) Reaches(a, b *ir.Value) bool {
	if a.Block == b.Block && r.pos[a] < r.pos[b] {
		return true
	}
	return r.blockReach[a.Block.Index][b.Block.Index]
}

// Pos returns the block-local position of v.
func (r *Reach) Pos(v *ir.Value) int { return r.pos[v] }

// Antidep is a memory write-after-read dependence: Write may overwrite the
// location Read observed, and Write is reachable from Read.
type Antidep struct {
	Read  *ir.Value // an OpLoad
	Write *ir.Value // an OpStore
	// MustAliasPair records that the two addresses provably match (the
	// paper's running example distinguishes may- and must-alias clobbers).
	MustAliasPair bool
}

// MemoryAntideps extracts all memory antidependences in f. Calls are not
// paired here: the region construction places mandatory cuts around calls
// (intra-procedural analysis, as in the paper's implementation), which
// separates any WAR spanning a call.
func MemoryAntideps(f *ir.Func, ai *alias.Info, reach *Reach) []Antidep {
	var loads, stores []*ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad:
				loads = append(loads, v)
			case ir.OpStore:
				stores = append(stores, v)
			}
		}
	}
	var out []Antidep
	for _, r := range loads {
		for _, w := range stores {
			if !ai.MayAlias(r.Args[0], w.Args[0]) {
				continue
			}
			if !reach.Reaches(r, w) {
				continue
			}
			out = append(out, Antidep{
				Read:          r,
				Write:         w,
				MustAliasPair: ai.MustAlias(r.Args[0], w.Args[0]),
			})
		}
	}
	return out
}

// Liveness holds per-block live-in/live-out sets of SSA values.
type Liveness struct {
	LiveIn  []map[*ir.Value]bool // indexed by Block.Index
	LiveOut []map[*ir.Value]bool
}

// ComputeLiveness runs backward liveness over f (which must be in SSA
// form: each value defined once). φ arguments are treated as live-out of
// the corresponding predecessor, per convention.
func ComputeLiveness(f *ir.Func) *Liveness {
	f.Renumber()
	n := len(f.Blocks)
	lv := &Liveness{
		LiveIn:  make([]map[*ir.Value]bool, n),
		LiveOut: make([]map[*ir.Value]bool, n),
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = map[*ir.Value]bool{}
		lv.LiveOut[i] = map[*ir.Value]bool{}
	}

	// use[b]: values used in b before any redefinition (SSA: no redefs);
	// φ uses excluded (they belong to preds). def[b]: values defined in b.
	use := make([]map[*ir.Value]bool, n)
	def := make([]map[*ir.Value]bool, n)
	for _, b := range f.Blocks {
		u, d := map[*ir.Value]bool{}, map[*ir.Value]bool{}
		for _, v := range b.Instrs {
			if v.Op != ir.OpPhi {
				for _, a := range v.Args {
					if !d[a] {
						u[a] = true
					}
				}
			}
			if v.Defines() {
				d[v] = true
			}
		}
		use[b.Index], def[b.Index] = u, d
	}

	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.LiveOut[b.Index]
			for _, s := range b.Succs {
				for v := range lv.LiveIn[s.Index] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
				// φ args incoming from b are live-out of b.
				for pi, p := range s.Preds {
					if p != b {
						continue
					}
					for _, phi := range s.Phis() {
						a := phi.Args[pi]
						if a != nil && !out[a] {
							out[a] = true
							changed = true
						}
					}
				}
			}
			in := lv.LiveIn[b.Index]
			for v := range use[b.Index] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[b.Index][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return lv
}

// LiveAt reports whether v is live immediately before instruction at in
// block b (at is the block-local index).
func (lv *Liveness) LiveAt(b *ir.Block, at int, v *ir.Value, pos Positions) bool {
	// Defined before 'at' in b or live-in, and used at/after 'at' or
	// live-out without redefinition (SSA: single def).
	defBefore := v.Block == b && pos[v] < at
	if !defBefore && !lv.LiveIn[b.Index][v] {
		return false
	}
	for i := at; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if in.Op == ir.OpPhi {
			continue
		}
		for _, a := range in.Args {
			if a == v {
				return true
			}
		}
	}
	return lv.LiveOut[b.Index][v]
}
