// Package dataflow provides the data-dependence analyses behind the
// paper's region construction: liveness, instruction-level reachability,
// and memory antidependence extraction (§2.1, §4.2.1).
//
// An antidependence is a write-after-read (WAR) pair. After the program
// transformations of §4.1 (SSA conversion + redundancy elimination), the
// surviving memory antidependences are exactly the potential clobber
// antidependences the region construction must cut.
package dataflow

import (
	"idemproc/internal/alias"
	"idemproc/internal/ir"
)

// Positions indexes every instruction's block-local position for
// intra-block ordering queries.
type Positions map[*ir.Value]int

// IndexPositions computes block-local instruction positions.
func IndexPositions(f *ir.Func) Positions {
	pos := Positions{}
	for _, b := range f.Blocks {
		for i, v := range b.Instrs {
			pos[v] = i
		}
	}
	return pos
}

// Reach answers instruction-level reachability queries: whether control
// can flow from one instruction to another along a path of at least one
// step.
type Reach struct {
	pos Positions
	// blockReach[i][j]: path of ≥1 edge from block i to block j.
	blockReach [][]bool
}

// ComputeReach builds the reachability index for f.
func ComputeReach(f *ir.Func) *Reach {
	f.Renumber()
	n := len(f.Blocks)
	r := &Reach{pos: IndexPositions(f), blockReach: make([][]bool, n)}
	for i := range r.blockReach {
		r.blockReach[i] = make([]bool, n)
	}
	// DFS from each block's successors.
	for _, b := range f.Blocks {
		var stack []*ir.Block
		for _, s := range b.Succs {
			if !r.blockReach[b.Index][s.Index] {
				r.blockReach[b.Index][s.Index] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range x.Succs {
				if !r.blockReach[b.Index][s.Index] {
					r.blockReach[b.Index][s.Index] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return r
}

// Reaches reports whether control can flow from instruction a to
// instruction b taking at least one step.
func (r *Reach) Reaches(a, b *ir.Value) bool {
	if a.Block == b.Block && r.pos[a] < r.pos[b] {
		return true
	}
	return r.blockReach[a.Block.Index][b.Block.Index]
}

// Pos returns the block-local position of v.
func (r *Reach) Pos(v *ir.Value) int { return r.pos[v] }

// Antidep is a memory write-after-read dependence: Write may overwrite the
// location Read observed, and Write is reachable from Read.
type Antidep struct {
	Read  *ir.Value // an OpLoad
	Write *ir.Value // an OpStore
	// MustAliasPair records that the two addresses provably match (the
	// paper's running example distinguishes may- and must-alias clobbers).
	MustAliasPair bool
}

// MemoryAntideps extracts all memory antidependences in f. Calls are not
// paired here: the region construction places mandatory cuts around calls
// (intra-procedural analysis, as in the paper's implementation), which
// separates any WAR spanning a call.
func MemoryAntideps(f *ir.Func, ai *alias.Info, reach *Reach) []Antidep {
	var loads, stores []*ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad:
				loads = append(loads, v)
			case ir.OpStore:
				stores = append(stores, v)
			}
		}
	}
	var out []Antidep
	for _, r := range loads {
		for _, w := range stores {
			if !ai.MayAlias(r.Args[0], w.Args[0]) {
				continue
			}
			if !reach.Reaches(r, w) {
				continue
			}
			out = append(out, Antidep{
				Read:          r,
				Write:         w,
				MustAliasPair: ai.MustAlias(r.Args[0], w.Args[0]),
			})
		}
	}
	return out
}

// bitset is a dense bit vector keyed by ir.Value.ID. The liveness solver
// used to iterate map[*ir.Value]bool sets, paying a hash and a heap node
// per member per pass; 64-value words turn the transfer functions into
// word-wide or/and-not operations.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// set sets bit i and reports whether it was newly set.
func (s bitset) set(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if s[w]&m != 0 {
		return false
	}
	s[w] |= m
	return true
}

// orWith ors src into s, reporting whether s changed.
func (s bitset) orWith(src bitset) bool {
	changed := false
	for w, x := range src {
		if old := s[w]; old|x != old {
			s[w] = old | x
			changed = true
		}
	}
	return changed
}

// orAndNotWith ors (src &^ mask) into s, reporting whether s changed.
func (s bitset) orAndNotWith(src, mask bitset) bool {
	changed := false
	for w, x := range src {
		if add := x &^ mask[w]; add != 0 {
			if old := s[w]; old|add != old {
				s[w] = old | add
				changed = true
			}
		}
	}
	return changed
}

// Liveness holds per-block live-in/live-out sets of SSA values as dense
// bitsets indexed by Block.Index and keyed by Value.ID. Query through
// LiveIn/LiveOut/LiveAt.
type Liveness struct {
	liveIn  []bitset // indexed by Block.Index
	liveOut []bitset
}

// ComputeLiveness runs backward liveness over f (which must be in SSA
// form: each value defined once). φ arguments are treated as live-out of
// the corresponding predecessor, per convention.
func ComputeLiveness(f *ir.Func) *Liveness {
	f.Renumber()
	n := len(f.Blocks)
	nv := f.NumValues()
	lv := &Liveness{
		liveIn:  make([]bitset, n),
		liveOut: make([]bitset, n),
	}
	// use[b]: values used in b before any redefinition (SSA: no redefs);
	// φ uses excluded (they belong to preds). def[b]: values defined in b.
	use := make([]bitset, n)
	def := make([]bitset, n)
	for i := 0; i < n; i++ {
		lv.liveIn[i] = newBitset(nv)
		lv.liveOut[i] = newBitset(nv)
		use[i] = newBitset(nv)
		def[i] = newBitset(nv)
	}
	for _, b := range f.Blocks {
		u, d := use[b.Index], def[b.Index]
		for _, v := range b.Instrs {
			if v.Op != ir.OpPhi {
				for _, a := range v.Args {
					if a != nil && !d.has(a.ID) {
						u.set(a.ID)
					}
				}
			}
			if v.Defines() {
				d.set(v.ID)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.liveOut[b.Index]
			for _, s := range b.Succs {
				if out.orWith(lv.liveIn[s.Index]) {
					changed = true
				}
				// φ args incoming from b are live-out of b.
				for pi, p := range s.Preds {
					if p != b {
						continue
					}
					for _, phi := range s.Phis() {
						a := phi.Args[pi]
						if a != nil && out.set(a.ID) {
							changed = true
						}
					}
				}
			}
			in := lv.liveIn[b.Index]
			if in.orWith(use[b.Index]) {
				changed = true
			}
			if in.orAndNotWith(out, def[b.Index]) {
				changed = true
			}
		}
	}
	return lv
}

// LiveIn reports whether v is live on entry to b.
func (lv *Liveness) LiveIn(b *ir.Block, v *ir.Value) bool {
	return lv.liveIn[b.Index].has(v.ID)
}

// LiveOut reports whether v is live on exit from b.
func (lv *Liveness) LiveOut(b *ir.Block, v *ir.Value) bool {
	return lv.liveOut[b.Index].has(v.ID)
}

// LiveAt reports whether v is live immediately before instruction at in
// block b (at is the block-local index).
func (lv *Liveness) LiveAt(b *ir.Block, at int, v *ir.Value, pos Positions) bool {
	// Defined before 'at' in b or live-in, and used at/after 'at' or
	// live-out without redefinition (SSA: single def).
	defBefore := v.Block == b && pos[v] < at
	if !defBefore && !lv.liveIn[b.Index].has(v.ID) {
		return false
	}
	for i := at; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if in.Op == ir.OpPhi {
			continue
		}
		for _, a := range in.Args {
			if a == v {
				return true
			}
		}
	}
	return lv.liveOut[b.Index].has(v.ID)
}
