package redelim

import (
	"testing"

	"idemproc/internal/alias"
	"idemproc/internal/dataflow"
	"idemproc/internal/ir"
)

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == op {
				n++
			}
		}
	}
	return n
}

// TestFig5Transform reproduces the paper's Figure 5:
//
//  1. mem[x] = a        1. mem[x] = a
//  2. b = mem[x]   →    2. b = a
//  3. mem[x] = c        3. mem[x] = c
//
// The antidependence 2→3 disappears because the load is forwarded.
func TestFig5Transform(t *testing.T) {
	src := `
global @x [1]

func @f(i64 %a, i64 %c) i64 {
e:
  %xa = global @x
  store %xa, %a
  %b = load %xa
  store %xa, %c
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	ai := alias.Compute(f)

	before := dataflow.MemoryAntideps(f, ai, dataflow.ComputeReach(f))
	if len(before) != 1 {
		t.Fatalf("before: %d antideps, want 1", len(before))
	}

	st := Run(f, ai)
	if st.ForwardedStores != 1 {
		t.Fatalf("ForwardedStores = %d, want 1", st.ForwardedStores)
	}
	if countOps(f, ir.OpLoad) != 0 {
		t.Fatal("load should have been forwarded away")
	}
	after := dataflow.MemoryAntideps(f, alias.Compute(f), dataflow.ComputeReach(f))
	if len(after) != 0 {
		t.Fatalf("after: %d antideps, want 0", len(after))
	}

	// Semantics preserved.
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f", 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("f(5,9) = %d, want 5", got)
	}
}

func TestMayAliasBlocksForwarding(t *testing.T) {
	// A may-alias (not must) intervening store kills the fact; forwarding
	// across it would be unsound.
	src := `
global @x [4]

func @f(i64 %p, i64 %i) i64 {
e:
  %xa = global @x
  store %xa, 1
  %xi = add %xa, %i
  store %xi, 2       ; may-alias x[0]
  %b = load %xa      ; must not be forwarded from the first store
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedStores != 0 {
		t.Fatalf("unsound forwarding across may-alias store (%d forwarded)", st.ForwardedStores)
	}
	if countOps(f, ir.OpLoad) != 1 {
		t.Fatal("load must survive")
	}
}

func TestCallKillsFacts(t *testing.T) {
	src := `
global @x [1]

func @g() void {
e:
  %xa = global @x
  store %xa, 99
  ret
}

func @f() i64 {
e:
  %xa = global @x
  store %xa, 1
  call @g()
  %b = load %xa
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedStores != 0 {
		t.Fatal("forwarding across a call is unsound for globals")
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("f() = %d, want 99", got)
	}
}

func TestCallKeepsLocalFacts(t *testing.T) {
	// Facts about non-escaped allocas survive calls.
	src := `
func @g() void {
e:
  ret
}

func @f() i64 {
e:
  %a = alloca 1
  store %a, 7
  call @g()
  %b = load %a
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedStores != 1 {
		t.Fatalf("local-slot fact should survive the call; forwarded=%d", st.ForwardedStores)
	}
}

func TestLoadLoadForwarding(t *testing.T) {
	src := `
global @x [1]

func @f() i64 {
e:
  %xa = global @x
  %a = load %xa
  %b = load %xa
  %r = add %a, %b
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedLoads != 1 {
		t.Fatalf("ForwardedLoads = %d, want 1", st.ForwardedLoads)
	}
	if countOps(f, ir.OpLoad) != 1 {
		t.Fatal("second load should be gone")
	}
}

func TestForwardingAcrossSinglePredEdge(t *testing.T) {
	src := `
global @x [1]

func @f(i64 %c) i64 {
e:
  %xa = global @x
  store %xa, 3
  br next
next:
  %b = load %xa
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedStores != 1 {
		t.Fatalf("fact should cross a single-pred edge; forwarded=%d", st.ForwardedStores)
	}
}

func TestNoForwardingAcrossJoin(t *testing.T) {
	// Conservative: facts die at join points.
	src := `
global @x [1]

func @f(i64 %c) i64 {
e:
  %xa = global @x
  store %xa, 3
  condbr %c, a, b
a:
  br j
b:
  store %xa, 4
  br j
j:
  %v = load %xa
  ret %v
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedStores != 0 {
		t.Fatal("forwarding into a join is not performed by this pass")
	}
	for _, args := range [][]ir.Word{{1}, {0}} {
		in := ir.NewInterp(m, 64)
		got, err := in.Run("f", args...)
		if err != nil {
			t.Fatal(err)
		}
		want := ir.Word(3)
		if args[0] == 0 {
			want = 4
		}
		if got != want {
			t.Fatalf("f(%d) = %d, want %d", args[0], got, want)
		}
	}
}

func TestTypeMismatchNotForwarded(t *testing.T) {
	src := `
global @x [1]

func @f(f64 %a) i64 {
e:
  %xa = global @x
  store %xa, %a
  %b = load %xa     ; i64 load of an f64 store: bit reinterpretation
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	st := Run(f, alias.Compute(f))
	if st.ForwardedStores != 0 {
		t.Fatal("cross-type forwarding must not happen")
	}
}
