// Package redelim implements the paper's Figure 5 transformation:
// redundancy elimination that removes memory antidependences that are
// *not* clobber antidependences.
//
// A load that must-alias a preceding store (with no intervening may-alias
// write) re-reads a value the program already holds in a pseudoregister.
// Forwarding the stored value deletes the load and with it the
// non-clobber antidependence, so that after this pass every remaining
// memory antidependence is a potential clobber antidependence — breaking
// the circular dependence between region construction and live-in
// identification (§4.1).
package redelim

import (
	"idemproc/internal/alias"
	"idemproc/internal/cfg"
	"idemproc/internal/ir"
)

// Stats reports what the pass eliminated.
type Stats struct {
	// ForwardedStores counts loads replaced by a preceding store's value.
	ForwardedStores int
	// ForwardedLoads counts loads replaced by an earlier load's value.
	ForwardedLoads int
}

// availEntry is one available memory fact: the word at Addr holds Val.
type availEntry struct {
	Addr *ir.Value
	Val  *ir.Value
	// FromStore marks facts established by a store (vs by a load), for
	// statistics only.
	FromStore bool
}

// Run performs store-to-load and load-to-load forwarding on f, which must
// be in SSA form. Facts propagate within blocks and across single-
// predecessor edges (where dominance is guaranteed); joins clear the
// table, which is conservative but sound.
func Run(f *ir.Func, ai *alias.Info) Stats {
	var st Stats
	f.RemoveUnreachable()
	info := cfg.Compute(f)

	exitState := make([][]availEntry, len(f.Blocks))
	for _, b := range info.RPO {
		var avail []availEntry
		if len(b.Preds) == 1 {
			p := b.Preds[0]
			// RPO guarantees p processed first except on back edges; a
			// back edge's state is unavailable, so start empty then.
			if info.RPONum[p.Index] < info.RPONum[b.Index] {
				avail = append(avail, exitState[p.Index]...)
			}
		}
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad:
				addr := v.Args[0]
				forwarded := false
				for _, e := range avail {
					if e.Val.Type == v.Type && ai.MustAlias(e.Addr, addr) {
						// Rewrite the load into a copy of the known value.
						if e.FromStore {
							st.ForwardedStores++
						} else {
							st.ForwardedLoads++
						}
						v.Op = ir.OpCopy
						v.Args = []*ir.Value{e.Val}
						forwarded = true
						break
					}
				}
				if !forwarded {
					avail = append(avail, availEntry{Addr: addr, Val: v})
				}
			case ir.OpStore:
				addr, val := v.Args[0], v.Args[1]
				kept := avail[:0]
				for _, e := range avail {
					if !ai.MayAlias(e.Addr, addr) {
						kept = append(kept, e)
					}
				}
				avail = append(kept, availEntry{Addr: addr, Val: val, FromStore: true})
			case ir.OpCall:
				// The callee may write any memory that is not a
				// non-escaped local; drop facts about aliasable storage.
				kept := avail[:0]
				for _, e := range avail {
					if l := ai.LocOf(e.Addr); l.Kind == alias.BaseAlloca && !ai.Escaped(l.Obj) {
						kept = append(kept, e)
					}
				}
				avail = kept
			}
		}
		exitState[b.Index] = avail
	}
	return st
}
