package fault

import (
	"fmt"

	"idemproc/internal/codegen"
	"idemproc/internal/machine"
)

// CampaignResult aggregates a fault-injection campaign over one program.
type CampaignResult struct {
	// Runs is the number of injection runs; Landed counts runs where the
	// fault actually corrupted a value (some steps fall on instructions
	// without register results).
	Runs, Landed int
	// Detected counts runs with at least one detection; Recovered counts
	// runs that re-executed at least one region (or rolled back).
	Detected, Recovered int
	// Correct counts landed runs whose final result matched the
	// fault-free reference.
	Correct int
	// ExtraInstrPct is the mean dynamic-instruction inflation of landed
	// runs relative to the fault-free run (the re-execution cost).
	ExtraInstrPct float64
}

// Campaign builds the machine configuration for scheme s, runs p once
// fault-free, then performs `runs` single-bit injection runs spread
// uniformly over the execution, checking each against the reference.
func Campaign(p *codegen.Program, s Scheme, runs int, args ...uint64) (*CampaignResult, error) {
	cfg := machine.Config{}
	switch s {
	case SchemeIdempotence:
		cfg.BufferStores = true
		cfg.Recovery = machine.RecoverIdempotence
	case SchemeCheckpointLog:
		cfg.Recovery = machine.RecoverCheckpointLog
	case SchemeTMR:
		cfg.Recovery = machine.RecoverTMR
	case SchemeDMR:
		// detection only; campaigns report detections, not recoveries
	}

	ref := machine.New(p, cfg)
	want, err := ref.Run(args...)
	if err != nil {
		return nil, fmt.Errorf("fault: reference run: %w", err)
	}
	span := ref.Stats.DynInstrs

	res := &CampaignResult{}
	var extra float64
	for i := 1; i <= runs; i++ {
		m := machine.New(p, cfg)
		step := span * int64(i) / int64(runs+1)
		m.InjectFault(step, uint(i*29)%63+1)
		got, err := m.Run(args...)
		res.Runs++
		if err != nil {
			if err == machine.ErrDetectedUnrecoverable && s == SchemeDMR {
				// DMR detects and halts: the expected outcome.
				res.Landed++
				res.Detected++
				continue
			}
			return nil, fmt.Errorf("fault: run %d: %w", i, err)
		}
		if m.Stats.Faults == 0 {
			continue
		}
		res.Landed++
		if m.Stats.Detections > 0 {
			res.Detected++
		}
		if m.Stats.Recoveries > 0 {
			res.Recovered++
		}
		if got == want {
			res.Correct++
		}
		extra += 100 * (float64(m.Stats.DynInstrs)/float64(span) - 1)
	}
	if res.Landed > 0 {
		res.ExtraInstrPct = extra / float64(res.Landed)
	}
	return res, nil
}
