// Campaign engine: parallel, seeded, resumable fault-injection campaigns
// over instrumented programs. Each run draws one injection from the
// enabled fault models using a PRNG derived from (campaign seed, run
// index), executes it on a private machine instance under the livelock
// watchdog, and classifies the outcome. Aggregates are computed in run
// order, so a campaign's JSON output is bit-for-bit reproducible from its
// seed regardless of worker count or interruption/resume history.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"

	"idemproc/internal/codegen"
	"idemproc/internal/machine"
)

// DefaultSeed seeds campaigns that do not specify one (the legacy
// Campaign entry point); any fixed value keeps them reproducible.
const DefaultSeed = 0x1de12012

// Spec configures a campaign.
type Spec struct {
	Scheme Scheme `json:"scheme"`
	Runs   int    `json:"runs"`
	// Seed is the master PRNG seed; run i draws from PCG(Seed, i+1).
	Seed uint64 `json:"seed"`
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Models is the enabled fault-model mix (default: register bit flips).
	Models []ModelKind `json:"models,omitempty"`
	// Args are the program arguments.
	Args []uint64 `json:"args,omitempty"`
	// WatchdogFactor and MaxRegionRetries tune the livelock watchdog
	// (defaults: 16x the fault-free reference, 64 retries).
	WatchdogFactor   float64 `json:"watchdog_factor,omitempty"`
	MaxRegionRetries int     `json:"max_region_retries,omitempty"`

	// KeepRecords includes every per-run record in the result.
	KeepRecords bool `json:"keep_records,omitempty"`

	// CheckpointPath enables periodic campaign checkpoints (every
	// CheckpointEvery completed runs, default 50); Resume loads an
	// existing checkpoint and skips its completed runs.
	CheckpointPath  string `json:"-"`
	CheckpointEvery int    `json:"-"`
	Resume          bool   `json:"-"`
}

// Outcome classifies one injection run.
type Outcome string

const (
	// OutcomeVacuous: the injection never materialized (e.g. the step
	// fell beyond the faulted execution's end).
	OutcomeVacuous Outcome = "vacuous"
	// OutcomeBenign: the fault landed, was never detected, and the
	// result was still correct (masked by the program).
	OutcomeBenign Outcome = "benign"
	// OutcomeCorrected: detected and/or recovered, correct result.
	OutcomeCorrected Outcome = "corrected"
	// OutcomeSDC: silent data corruption — the run terminated normally
	// with a wrong result.
	OutcomeSDC Outcome = "sdc"
	// OutcomeDetectedHalt: fail-stop detection without recovery (DMR).
	OutcomeDetectedHalt Outcome = "detected-halt"
	// OutcomeLivelock: the watchdog fired (instruction budget or retry
	// bound); detected-unrecoverable by escalation.
	OutcomeLivelock Outcome = "livelock"
	// OutcomeCrash: the faulted run died on a machine error (invalid
	// address, division by zero) before any scheme check fired.
	OutcomeCrash Outcome = "crash"
)

// RunRecord is one completed injection run.
type RunRecord struct {
	Index     int       `json:"index"`
	Injection Injection `json:"injection"`
	Outcome   Outcome   `json:"outcome"`
	// Detections/Recoveries mirror the machine counters.
	Detections int64 `json:"detections,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
	// DetectLatency is dynamic instructions from first fault to first
	// detection (-1 when either never happened).
	DetectLatency int64 `json:"detect_latency"`
	// ExtraPct is the dynamic-instruction inflation over the fault-free
	// reference (only meaningful for normally-terminated runs).
	ExtraPct float64 `json:"extra_pct"`
	Err      string  `json:"err,omitempty"`
}

// ModelStats aggregates outcomes per fault model.
type ModelStats struct {
	Runs      int `json:"runs"`
	Landed    int `json:"landed"`
	Benign    int `json:"benign"`
	Corrected int `json:"corrected"`
	SDC       int `json:"sdc"`
}

// CampaignResult aggregates a campaign. The legacy counters (Runs,
// Landed, Detected, Recovered, Correct, ExtraInstrPct) keep their
// historical meaning; the new fields carry the structured outcome
// taxonomy, rates and percentiles the experiment drivers consume.
type CampaignResult struct {
	Scheme string `json:"scheme"`
	Seed   uint64 `json:"seed"`
	// Runs is the number of injection runs; Landed counts runs where the
	// fault actually materialized.
	Runs   int `json:"runs"`
	Landed int `json:"landed"`
	// Detected counts runs with at least one detection; Recovered counts
	// runs that re-executed at least one region (or rolled back).
	Detected  int `json:"detected"`
	Recovered int `json:"recovered"`
	// Correct counts landed runs whose final result matched the
	// fault-free reference.
	Correct int `json:"correct"`
	// ExtraInstrPct is the mean dynamic-instruction inflation of landed
	// runs relative to the fault-free run (the re-execution cost).
	ExtraInstrPct float64 `json:"extra_instr_pct"`

	// Outcome taxonomy.
	Vacuous      int `json:"vacuous"`
	Benign       int `json:"benign"`
	Corrected    int `json:"corrected"`
	SDC          int `json:"sdc"`
	DetectedHalt int `json:"detected_halt"`
	Livelocks    int `json:"livelocks"`
	Crashes      int `json:"crashes"`

	// Rates over landed runs.
	SDCRate       float64 `json:"sdc_rate"`
	DetectionRate float64 `json:"detection_rate"`
	RecoveryRate  float64 `json:"recovery_rate"`

	// MeanDetectLatency is the mean instructions from fault to first
	// detection over runs where both happened.
	MeanDetectLatency float64 `json:"mean_detect_latency"`

	// Inflation percentiles over landed, normally-terminated runs.
	InflationP50 float64 `json:"inflation_p50"`
	InflationP90 float64 `json:"inflation_p90"`
	InflationP99 float64 `json:"inflation_p99"`

	ByModel map[string]*ModelStats `json:"by_model,omitempty"`

	Records []RunRecord `json:"records,omitempty"`
}

// configFor builds the machine configuration for a scheme.
func configFor(s Scheme) machine.Config {
	cfg := machine.Config{}
	switch s {
	case SchemeIdempotence:
		cfg.BufferStores = true
		cfg.Recovery = machine.RecoverIdempotence
	case SchemeCheckpointLog:
		cfg.Recovery = machine.RecoverCheckpointLog
	case SchemeTMR:
		cfg.Recovery = machine.RecoverTMR
	case SchemeDMR:
		// detection only; campaigns report detections, not recoveries
	}
	return cfg
}

// Campaign runs a seeded single-bit register-flip campaign with the
// default seed — the legacy entry point, now backed by the parallel
// engine. See RunCampaign for the full interface.
func Campaign(p *codegen.Program, s Scheme, runs int, args ...uint64) (*CampaignResult, error) {
	return RunCampaign(context.Background(), p, Spec{
		Scheme: s,
		Runs:   runs,
		Seed:   DefaultSeed,
		Args:   args,
	})
}

// RunCampaign executes spec against p: one fault-free reference run, then
// spec.Runs injection runs on a bounded worker pool. Each run's injection
// is drawn from PCG(spec.Seed, index+1), so results are reproducible for
// any worker count. Cancelling ctx stops dispatch, drains in-flight runs,
// writes a final checkpoint (when configured) and returns ctx's error;
// re-invoking with Resume set picks up where it stopped.
func RunCampaign(ctx context.Context, p *codegen.Program, spec Spec) (*CampaignResult, error) {
	if spec.Runs <= 0 {
		return nil, errors.New("fault: campaign needs at least one run")
	}
	if len(spec.Models) == 0 {
		spec.Models = []ModelKind{ModelRegisterBitFlip}
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Runs {
		workers = spec.Runs
	}
	if spec.CheckpointEvery <= 0 {
		spec.CheckpointEvery = 50
	}

	cfg := configFor(spec.Scheme)
	ref := machine.New(p, cfg)
	want, err := ref.Run(spec.Args...)
	if err != nil {
		return nil, fmt.Errorf("fault: reference run: %w", err)
	}
	span := ref.Stats.DynInstrs

	env := Env{Span: span, MemWords: int64(p.MemWords), GlobalEnd: p.GlobalEnd}
	runCfg := cfg
	runCfg.WatchdogRef = span
	runCfg.WatchdogFactor = spec.WatchdogFactor
	runCfg.MaxRegionRetries = spec.MaxRegionRetries

	// Resume: load completed records from the checkpoint, if any.
	records := make([]*RunRecord, spec.Runs)
	if spec.Resume && spec.CheckpointPath != "" {
		ck, err := LoadCheckpoint(spec.CheckpointPath)
		switch {
		case err == nil:
			if err := ck.validate(spec, span, want); err != nil {
				return nil, err
			}
			for i := range ck.Records {
				r := ck.Records[i]
				if r.Index >= 0 && r.Index < spec.Runs {
					records[r.Index] = &r
				}
			}
		case errors.Is(err, errCheckpointMissing):
			// nothing to resume; run from scratch
		default:
			return nil, err
		}
	}
	var todo []int
	for i := range records {
		if records[i] == nil {
			todo = append(todo, i)
		}
	}

	// Dispatch. The feeder stops on cancellation; workers always drain
	// the index channel, so resCh sees every started run.
	idxCh := make(chan int)
	resCh := make(chan RunRecord, workers)
	go func() {
		defer close(idxCh)
		for _, i := range todo {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idxCh {
				resCh <- runOne(p, runCfg, spec, env, span, want, i)
			}
			done <- struct{}{}
		}()
	}
	go func() {
		for w := 0; w < workers; w++ {
			<-done
		}
		close(resCh)
	}()

	// Collect, checkpointing periodically.
	sinceCkpt := 0
	for rec := range resCh {
		rec := rec
		records[rec.Index] = &rec
		sinceCkpt++
		if spec.CheckpointPath != "" && sinceCkpt >= spec.CheckpointEvery {
			sinceCkpt = 0
			if err := saveCheckpoint(spec.CheckpointPath, spec, span, want, records); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		if spec.CheckpointPath != "" {
			if serr := saveCheckpoint(spec.CheckpointPath, spec, span, want, records); serr != nil {
				return nil, errors.Join(err, serr)
			}
		}
		return nil, fmt.Errorf("fault: campaign interrupted: %w", err)
	}
	if spec.CheckpointPath != "" {
		if err := saveCheckpoint(spec.CheckpointPath, spec, span, want, records); err != nil {
			return nil, err
		}
	}
	return aggregate(spec, records), nil
}

// runOne executes injection run i.
func runOne(p *codegen.Program, cfg machine.Config, spec Spec, env Env, span int64, want uint64, i int) RunRecord {
	rng := rand.New(rand.NewPCG(spec.Seed, uint64(i)+1))
	kind := spec.Models[rng.IntN(len(spec.Models))]
	inj := ModelFor(kind).Sample(rng, env)

	m := machine.New(p, cfg)
	Arm(m, inj)
	got, err := m.Run(spec.Args...)

	rec := RunRecord{
		Index:         i,
		Injection:     inj,
		Detections:    m.Stats.Detections,
		Recoveries:    m.Stats.Recoveries,
		DetectLatency: -1,
		ExtraPct:      100 * (float64(m.Stats.DynInstrs)/float64(span) - 1),
	}
	if m.Stats.FirstFaultStep >= 0 && m.Stats.FirstDetectStep >= m.Stats.FirstFaultStep {
		rec.DetectLatency = m.Stats.FirstDetectStep - m.Stats.FirstFaultStep
	}
	switch {
	case errors.Is(err, machine.ErrDetectedUnrecoverable):
		rec.Outcome = OutcomeDetectedHalt
	case errors.Is(err, machine.ErrLivelock):
		rec.Outcome = OutcomeLivelock
	case err != nil:
		rec.Outcome = OutcomeCrash
		rec.Err = err.Error()
	case m.Stats.Faults == 0:
		rec.Outcome = OutcomeVacuous
	case got != want:
		rec.Outcome = OutcomeSDC
	case m.Stats.Detections > 0:
		rec.Outcome = OutcomeCorrected
	default:
		rec.Outcome = OutcomeBenign
	}
	return rec
}

// aggregate folds records (in index order) into the campaign result.
func aggregate(spec Spec, records []*RunRecord) *CampaignResult {
	res := &CampaignResult{
		Scheme:  spec.Scheme.String(),
		Seed:    spec.Seed,
		ByModel: map[string]*ModelStats{},
	}
	var extraSum float64
	var inflations []float64
	var latSum float64
	var latN int
	for _, r := range records {
		if r == nil {
			continue
		}
		res.Runs++
		ms := res.ByModel[r.Injection.Model.String()]
		if ms == nil {
			ms = &ModelStats{}
			res.ByModel[r.Injection.Model.String()] = ms
		}
		ms.Runs++
		landed := r.Outcome != OutcomeVacuous
		if landed {
			res.Landed++
			ms.Landed++
		}
		if r.Detections > 0 || r.Outcome == OutcomeDetectedHalt {
			res.Detected++
		}
		if r.Recoveries > 0 {
			res.Recovered++
		}
		if r.DetectLatency >= 0 {
			latSum += float64(r.DetectLatency)
			latN++
		}
		switch r.Outcome {
		case OutcomeVacuous:
			res.Vacuous++
		case OutcomeBenign:
			res.Benign++
			res.Correct++
			ms.Benign++
		case OutcomeCorrected:
			res.Corrected++
			res.Correct++
			ms.Corrected++
		case OutcomeSDC:
			res.SDC++
			ms.SDC++
		case OutcomeDetectedHalt:
			res.DetectedHalt++
		case OutcomeLivelock:
			res.Livelocks++
		case OutcomeCrash:
			res.Crashes++
		}
		switch r.Outcome {
		case OutcomeBenign, OutcomeCorrected, OutcomeSDC:
			extraSum += r.ExtraPct
			inflations = append(inflations, r.ExtraPct)
		}
		if spec.KeepRecords {
			res.Records = append(res.Records, *r)
		}
	}
	if len(inflations) > 0 {
		res.ExtraInstrPct = extraSum / float64(len(inflations))
		sort.Float64s(inflations)
		res.InflationP50 = percentile(inflations, 0.50)
		res.InflationP90 = percentile(inflations, 0.90)
		res.InflationP99 = percentile(inflations, 0.99)
	}
	if latN > 0 {
		res.MeanDetectLatency = latSum / float64(latN)
	}
	if res.Landed > 0 {
		res.SDCRate = float64(res.SDC) / float64(res.Landed)
		res.DetectionRate = float64(res.Detected) / float64(res.Landed)
		res.RecoveryRate = float64(res.Recovered) / float64(res.Landed)
	}
	return res
}

// percentile returns the nearest-rank p-quantile of sorted vals.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	idx := int(p*float64(len(vals))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
