package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint is the on-disk snapshot of a partially completed campaign:
// the spec it was launched with, the reference run's fingerprint (span
// and result, guarding against resuming onto a different program or
// arguments), and every completed run record. Checkpoints are written
// atomically (temp file + rename), so a kill mid-write leaves the
// previous snapshot intact.
type Checkpoint struct {
	Version int   `json:"version"`
	Spec    Spec  `json:"spec"`
	Span    int64 `json:"span"`
	// Want is the fault-free reference result.
	Want    uint64      `json:"want"`
	Records []RunRecord `json:"records"`
}

// checkpointVersion guards the schema.
const checkpointVersion = 1

// errCheckpointMissing distinguishes "no checkpoint yet" (fresh start)
// from a corrupt or mismatched one (hard error).
var errCheckpointMissing = errors.New("fault: no checkpoint")

// LoadCheckpoint reads a campaign checkpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w at %s", errCheckpointMissing, path)
		}
		return nil, fmt.Errorf("fault: reading checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("fault: corrupt checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("fault: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	return &ck, nil
}

// validate checks that a loaded checkpoint belongs to the campaign being
// resumed: same seed, scheme, run count, model mix, and the same
// reference fingerprint.
func (ck *Checkpoint) validate(spec Spec, span int64, want uint64) error {
	switch {
	case ck.Spec.Seed != spec.Seed:
		return fmt.Errorf("fault: checkpoint seed %d != campaign seed %d", ck.Spec.Seed, spec.Seed)
	case ck.Spec.Scheme != spec.Scheme:
		return fmt.Errorf("fault: checkpoint scheme %v != campaign scheme %v", ck.Spec.Scheme, spec.Scheme)
	case ck.Spec.Runs != spec.Runs:
		return fmt.Errorf("fault: checkpoint runs %d != campaign runs %d", ck.Spec.Runs, spec.Runs)
	case len(ck.Spec.Models) != len(spec.Models):
		return fmt.Errorf("fault: checkpoint model mix differs")
	case ck.Span != span || ck.Want != want:
		return fmt.Errorf("fault: checkpoint reference (span=%d result=%d) does not match this program (span=%d result=%d)",
			ck.Span, ck.Want, span, want)
	}
	for i := range ck.Spec.Models {
		if ck.Spec.Models[i] != spec.Models[i] {
			return fmt.Errorf("fault: checkpoint model mix differs at %d: %v != %v", i, ck.Spec.Models[i], spec.Models[i])
		}
	}
	return nil
}

// saveCheckpoint atomically writes the completed records to path.
func saveCheckpoint(path string, spec Spec, span int64, want uint64, records []*RunRecord) error {
	ck := Checkpoint{Version: checkpointVersion, Spec: spec, Span: span, Want: want}
	for _, r := range records {
		if r != nil {
			ck.Records = append(ck.Records, *r)
		}
	}
	sort.Slice(ck.Records, func(i, j int) bool { return ck.Records[i].Index < ck.Records[j].Index })
	data, err := json.MarshalIndent(&ck, "", " ")
	if err != nil {
		return fmt.Errorf("fault: encoding checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("fault: writing checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fault: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fault: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fault: writing checkpoint: %w", err)
	}
	return nil
}
