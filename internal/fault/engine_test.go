package fault

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// buildWorkload compiles a (shrunk) built-in workload for campaign tests.
func buildWorkload(t *testing.T, name string, idem bool) (*codegen.Program, []uint64) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	args := append([]uint64{}, w.Args...)
	if args[0] > 8 {
		args[0] = args[0] / 4
	}
	p, _, err := codegen.CompileModule(w.Module(), "main", w.MemWords, idem, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p, args
}

// TestCampaignReproducibleParallel runs a 200-run campaign on a built-in
// workload twice with the same seed and ≥4 workers and requires the two
// aggregate JSON documents (including every per-run record) to match
// bit for bit: per-run PRNG derivation makes results independent of
// worker scheduling.
func TestCampaignReproducibleParallel(t *testing.T) {
	p, args := buildWorkload(t, "blackscholes", true)
	ip := Apply(p, SchemeIdempotence)
	spec := Spec{
		Scheme:      SchemeIdempotence,
		Runs:        200,
		Seed:        12345,
		Workers:     8,
		Args:        args,
		KeepRecords: true,
	}
	a, err := RunCampaign(context.Background(), ip, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(context.Background(), ip, spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different campaigns:\n%s\n---\n%s", ja, jb)
	}
	if a.Landed < 100 {
		t.Fatalf("only %d of %d faults landed", a.Landed, a.Runs)
	}
	if a.Correct != a.Landed {
		t.Fatalf("%d of %d landed register flips gave wrong results", a.Landed-a.Correct, a.Landed)
	}
	if a.Seed != spec.Seed || a.Scheme != SchemeIdempotence.String() {
		t.Fatalf("result metadata wrong: %+v", a)
	}
}

// TestCampaignAllModelsOutcomes draws from every fault model under
// idempotence-based recovery. Faults inside the register/control-flow
// sphere must never produce an SDC, crash or livelock; memory faults are
// outside any register-redundancy sphere, so any outcome is legal there —
// they just must terminate and be classified.
func TestCampaignAllModelsOutcomes(t *testing.T) {
	ip := Apply(buildProgram(t, true), SchemeIdempotence)
	res, err := RunCampaign(context.Background(), ip, Spec{
		Scheme:      SchemeIdempotence,
		Runs:        240,
		Seed:        7,
		Workers:     6,
		Models:      AllModels(),
		Args:        []uint64{40},
		KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	perModel := map[ModelKind]int{}
	for _, r := range res.Records {
		perModel[r.Injection.Model]++
		if r.Injection.Model == ModelMemoryWord {
			continue // outside the detection sphere: any classified outcome is fine
		}
		switch r.Outcome {
		case OutcomeVacuous, OutcomeBenign, OutcomeCorrected:
		default:
			t.Errorf("run %d (%v): outcome %v (err=%q) — in-sphere fault not contained",
				r.Index, r.Injection.Model, r.Outcome, r.Err)
		}
	}
	for _, k := range AllModels() {
		if perModel[k] == 0 {
			t.Errorf("model %v was never drawn in %d runs", k, res.Runs)
		}
	}
	if res.Detected == 0 || res.Recovered == 0 {
		t.Fatalf("campaign saw no detections/recoveries: %+v", res)
	}
	if res.MeanDetectLatency <= 0 {
		t.Fatalf("detection latency not aggregated: %+v", res)
	}
	if res.ByModel[ModelRegisterBitFlip.String()] == nil {
		t.Fatal("per-model aggregates missing")
	}
}

// TestNestedFaultRecovery injects a primary flip plus a second flip fired
// during the re-execution the first recovery starts. The idempotence
// scheme must absorb both (another detection, another re-execution) and
// still produce the fault-free result.
func TestNestedFaultRecovery(t *testing.T) {
	plain := machine.New(buildProgram(t, false), machine.Config{})
	want, err := plain.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	ip := Apply(buildProgram(t, true), SchemeIdempotence)
	cfg := machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence}

	doubleRecovered := 0
	for step := int64(5); step < 600; step += 13 {
		m := machine.New(ip, cfg)
		m.InjectFault(step, 9)
		m.InjectNestedFault(1, 1<<9)
		got, err := m.Run(40)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if m.Stats.Faults == 0 {
			continue
		}
		if got != want {
			t.Fatalf("step %d: got %d want %d (faults=%d recoveries=%d)",
				step, got, want, m.Stats.Faults, m.Stats.Recoveries)
		}
		if m.Stats.Faults >= 2 && m.Stats.Recoveries >= 2 {
			doubleRecovered++
		}
	}
	if doubleRecovered == 0 {
		t.Fatal("no run ever recovered from a nested fault")
	}
	t.Logf("%d runs recovered from recovery-time faults", doubleRecovered)
}

// TestNestedFaultStormEscalatesToLivelock schedules a fresh fault after
// every recovery so no re-execution can complete cleanly. The bounded
// retry counter must escalate to ErrLivelock instead of re-executing
// forever. (No instruction-budget watchdog is configured, so only the
// retry bound can stop the storm.)
func TestNestedFaultStormEscalatesToLivelock(t *testing.T) {
	ip := Apply(buildProgram(t, true), SchemeIdempotence)
	cfg := machine.Config{
		BufferStores:     true,
		Recovery:         machine.RecoverIdempotence,
		MaxRegionRetries: 4,
	}
	livelocks := 0
	for step := int64(5); step < 600; step += 13 {
		m := machine.New(ip, cfg)
		m.InjectFault(step, 9)
		for k := int64(1); k <= 30; k++ {
			m.InjectNestedFault(k, 1<<9)
		}
		_, err := m.Run(40)
		if err == nil {
			continue // storm never caught fire at this placement
		}
		if !errors.Is(err, machine.ErrLivelock) {
			t.Fatalf("step %d: unexpected error %v", step, err)
		}
		livelocks++
		if m.Stats.DynInstrs > 200_000 {
			t.Fatalf("step %d: retry bound fired far too late (%d instrs)", step, m.Stats.DynInstrs)
		}
	}
	if livelocks == 0 {
		t.Fatal("no nested-fault storm ever escalated to ErrLivelock")
	}
	t.Logf("%d storms escalated to ErrLivelock", livelocks)
}

// TestCampaignCheckpointResume interrupts a campaign (deterministically,
// by rewriting its checkpoint to contain only a prefix of the records)
// and resumes it; the resumed aggregate JSON must equal an uninterrupted
// run with the same seed, bit for bit.
func TestCampaignCheckpointResume(t *testing.T) {
	ip := Apply(buildProgram(t, true), SchemeIdempotence)
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "campaign.ckpt.json")
	spec := Spec{
		Scheme:      SchemeIdempotence,
		Runs:        60,
		Seed:        99,
		Workers:     4,
		Models:      []ModelKind{ModelRegisterBitFlip, ModelRegisterBurst},
		Args:        []uint64{40},
		KeepRecords: true,
	}

	// Uninterrupted baseline.
	full, err := RunCampaign(context.Background(), ip, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.MarshalIndent(full, "", " ")

	// Reference fingerprint for the crafted partial checkpoint.
	cfg := configFor(spec.Scheme)
	ref := machine.New(ip, cfg)
	want, err := ref.Run(spec.Args...)
	if err != nil {
		t.Fatal(err)
	}
	span := ref.Stats.DynInstrs

	// Simulate an interrupted campaign: a checkpoint holding only the
	// first 20 completed runs.
	partial := make([]*RunRecord, spec.Runs)
	for i := 0; i < 20; i++ {
		r := full.Records[i]
		partial[i] = &r
	}
	if err := saveCheckpoint(ckptPath, spec, span, want, partial); err != nil {
		t.Fatal(err)
	}

	resumeSpec := spec
	resumeSpec.CheckpointPath = ckptPath
	resumeSpec.Resume = true
	resumed, err := RunCampaign(context.Background(), ip, resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.MarshalIndent(resumed, "", " ")
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("resumed aggregate differs from uninterrupted run:\n%s\n---\n%s", gotJSON, wantJSON)
	}

	// The final checkpoint holds every record.
	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Records) != spec.Runs {
		t.Fatalf("final checkpoint has %d records, want %d", len(ck.Records), spec.Runs)
	}

	// Resuming against a mismatched campaign must be rejected.
	bad := resumeSpec
	bad.Seed = 100
	if _, err := RunCampaign(context.Background(), ip, bad); err == nil {
		t.Fatal("resume with a different seed was not rejected")
	}
}

// TestCampaignCancellation cancels a running campaign and checks that it
// returns the context error, leaves a loadable checkpoint behind, and
// that resuming completes the campaign with aggregates identical to an
// uninterrupted run.
func TestCampaignCancellation(t *testing.T) {
	p, args := buildWorkload(t, "canneal", true)
	ip := Apply(p, SchemeIdempotence)
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "cancel.ckpt.json")
	spec := Spec{
		Scheme:          SchemeIdempotence,
		Runs:            64,
		Seed:            5,
		Workers:         4,
		Args:            args,
		KeepRecords:     true,
		CheckpointPath:  ckptPath,
		CheckpointEvery: 4,
	}

	baseline, err := RunCampaign(context.Background(), ip, spec)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(ckptPath)

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	res, err := RunCampaign(ctx, ip, spec)
	if err == nil {
		// The campaign beat the timer; cancellation path not exercised,
		// but the result must still match the baseline.
		ja, _ := json.Marshal(res)
		jb, _ := json.Marshal(baseline)
		if string(ja) != string(jb) {
			t.Fatal("uncancelled rerun differs from baseline")
		}
		t.Skip("campaign finished before cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	resumeSpec := spec
	resumeSpec.Resume = true
	resumed, err := RunCampaign(context.Background(), ip, resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(resumed)
	jb, _ := json.Marshal(baseline)
	if string(ja) != string(jb) {
		t.Fatalf("resumed-after-cancel aggregate differs from uninterrupted run:\n%s\n---\n%s", ja, jb)
	}
}

// TestParseModels covers the model-mix parser.
func TestParseModels(t *testing.T) {
	ms, err := ParseModels("reg, mem,cf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0] != ModelRegisterBitFlip || ms[1] != ModelMemoryWord || ms[2] != ModelControlFlow {
		t.Fatalf("ParseModels: %v", ms)
	}
	if ms, err = ParseModels("all"); err != nil || len(ms) != int(numModels) {
		t.Fatalf("ParseModels(all): %v %v", ms, err)
	}
	if _, err := ParseModels("bogus"); err == nil {
		t.Fatal("bogus model accepted")
	}
	var k ModelKind
	if err := k.UnmarshalText([]byte("burst")); err != nil || k != ModelRegisterBurst {
		t.Fatalf("round trip: %v %v", k, err)
	}
}
