package fault

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"idemproc/internal/machine"
)

// ModelKind identifies a fault model. The engine is compositional in the
// FastFlip sense: a campaign draws each run's injection from the set of
// enabled models, and every draw is reproducible from the campaign seed
// and the run index alone.
type ModelKind uint8

const (
	// ModelRegisterBitFlip is the classic single-event upset: one bit of
	// one register-write destination is flipped.
	ModelRegisterBitFlip ModelKind = iota
	// ModelRegisterBurst flips a short run (2–4) of adjacent bits in one
	// destination, modelling multi-bit upsets in a latch array.
	ModelRegisterBurst
	// ModelMemoryWord flips bits of a memory word in place (store buffer
	// or backing memory). Register-level redundancy does not cover it;
	// outcomes are SDCs, crashes or livelocks, never DMR detections.
	ModelMemoryWord
	// ModelControlFlow forces a conditional branch the wrong way (§2.3).
	ModelControlFlow
	// ModelBoundary arms a bit flip that fires on the first register
	// write after the next MARK — corruption at maximal re-execution
	// distance from the region entry's implicit checkpoint.
	ModelBoundary
	// ModelNested injects a primary bit flip and a second flip on the
	// first register write after the first recovery, testing
	// recovery-under-failure.
	ModelNested

	numModels
)

var modelNames = [numModels]string{
	ModelRegisterBitFlip: "reg",
	ModelRegisterBurst:   "burst",
	ModelMemoryWord:      "mem",
	ModelControlFlow:     "cf",
	ModelBoundary:        "boundary",
	ModelNested:          "nested",
}

func (k ModelKind) String() string {
	if int(k) < len(modelNames) {
		return modelNames[k]
	}
	return fmt.Sprintf("model(%d)", uint8(k))
}

// MarshalText renders the model name into JSON (and map keys).
func (k ModelKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a model name.
func (k *ModelKind) UnmarshalText(b []byte) error {
	for i, n := range modelNames {
		if n == string(b) {
			*k = ModelKind(i)
			return nil
		}
	}
	return fmt.Errorf("fault: unknown fault model %q", b)
}

// AllModels lists every fault model kind.
func AllModels() []ModelKind {
	out := make([]ModelKind, numModels)
	for i := range out {
		out[i] = ModelKind(i)
	}
	return out
}

// ParseModels parses a comma-separated model list ("reg,mem,cf"); the
// literal "all" enables every model.
func ParseModels(s string) ([]ModelKind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	if strings.TrimSpace(s) == "all" {
		return AllModels(), nil
	}
	var out []ModelKind
	for _, f := range strings.Split(s, ",") {
		var k ModelKind
		if err := k.UnmarshalText([]byte(strings.TrimSpace(f))); err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Env is the sampling environment a model draws placements from.
type Env struct {
	// Span is the fault-free dynamic instruction count.
	Span int64
	// MemWords is the simulated memory size; GlobalEnd the end of the
	// initialized global segment (memory faults are biased toward it —
	// the live data the program actually reads).
	MemWords  int64
	GlobalEnd int64
}

// Injection is one sampled fault, fully describing how to arm a machine.
// It round-trips through the campaign checkpoint JSON.
type Injection struct {
	Model ModelKind `json:"model"`
	// Step is the dynamic-instruction placement.
	Step int64 `json:"step"`
	// Mask is the bit-flip mask (register, memory and boundary models).
	Mask uint64 `json:"mask,omitempty"`
	// Addr is the corrupted word for ModelMemoryWord.
	Addr int64 `json:"addr,omitempty"`
	// After and NestedMask describe the recovery-triggered second flip
	// of ModelNested.
	After      int64  `json:"after,omitempty"`
	NestedMask uint64 `json:"nested_mask,omitempty"`
}

// Model samples injections for one fault-model kind. Implementations are
// stateless; all randomness comes from the per-run PRNG.
type Model interface {
	Kind() ModelKind
	Sample(rng *rand.Rand, env Env) Injection
}

// ModelFor returns the Model implementation for a kind.
func ModelFor(k ModelKind) Model {
	switch k {
	case ModelRegisterBitFlip:
		return bitFlipModel{}
	case ModelRegisterBurst:
		return burstModel{}
	case ModelMemoryWord:
		return memWordModel{}
	case ModelControlFlow:
		return controlFlowModel{}
	case ModelBoundary:
		return boundaryModel{}
	case ModelNested:
		return nestedModel{}
	}
	return bitFlipModel{}
}

// sampleStep places an injection uniformly over the fault-free execution.
func sampleStep(rng *rand.Rand, env Env) int64 {
	if env.Span <= 1 {
		return 1
	}
	return 1 + rng.Int64N(env.Span-1)
}

type bitFlipModel struct{}

func (bitFlipModel) Kind() ModelKind { return ModelRegisterBitFlip }
func (bitFlipModel) Sample(rng *rand.Rand, env Env) Injection {
	return Injection{
		Model: ModelRegisterBitFlip,
		Step:  sampleStep(rng, env),
		Mask:  1 << rng.UintN(64),
	}
}

type burstModel struct{}

func (burstModel) Kind() ModelKind { return ModelRegisterBurst }
func (burstModel) Sample(rng *rand.Rand, env Env) Injection {
	width := 2 + rng.UintN(3) // 2..4 adjacent bits
	pos := rng.UintN(64)
	mask := (uint64(1)<<width - 1) << pos // truncates at bit 63
	return Injection{
		Model: ModelRegisterBurst,
		Step:  sampleStep(rng, env),
		Mask:  mask,
	}
}

type memWordModel struct{}

func (memWordModel) Kind() ModelKind { return ModelMemoryWord }
func (memWordModel) Sample(rng *rand.Rand, env Env) Injection {
	// Bias half the draws into the global segment (the data the program
	// actually computes on); the rest cover the whole address space,
	// including stack, undo log and untouched words.
	hi := env.MemWords
	if rng.UintN(2) == 0 && env.GlobalEnd > 2 {
		hi = env.GlobalEnd
	}
	if hi < 2 {
		hi = 2
	}
	return Injection{
		Model: ModelMemoryWord,
		Step:  sampleStep(rng, env),
		Addr:  1 + rng.Int64N(hi-1),
		Mask:  1 << rng.UintN(64),
	}
}

type controlFlowModel struct{}

func (controlFlowModel) Kind() ModelKind { return ModelControlFlow }
func (controlFlowModel) Sample(rng *rand.Rand, env Env) Injection {
	return Injection{Model: ModelControlFlow, Step: sampleStep(rng, env)}
}

type boundaryModel struct{}

func (boundaryModel) Kind() ModelKind { return ModelBoundary }
func (boundaryModel) Sample(rng *rand.Rand, env Env) Injection {
	return Injection{
		Model: ModelBoundary,
		Step:  sampleStep(rng, env),
		Mask:  1 << rng.UintN(64),
	}
}

type nestedModel struct{}

func (nestedModel) Kind() ModelKind { return ModelNested }
func (nestedModel) Sample(rng *rand.Rand, env Env) Injection {
	return Injection{
		Model:      ModelNested,
		Step:       sampleStep(rng, env),
		Mask:       1 << rng.UintN(64),
		After:      1,
		NestedMask: 1 << rng.UintN(64),
	}
}

// Arm schedules inj on a fresh machine.
func Arm(m *machine.Machine, inj Injection) {
	switch inj.Model {
	case ModelRegisterBitFlip, ModelRegisterBurst:
		m.InjectFaultMask(inj.Step, inj.Mask)
	case ModelMemoryWord:
		m.InjectMemFault(inj.Step, inj.Addr, inj.Mask)
	case ModelControlFlow:
		m.InjectControlFlowError(inj.Step)
	case ModelBoundary:
		m.InjectBoundaryFault(inj.Step, inj.Mask)
	case ModelNested:
		m.InjectFaultMask(inj.Step, inj.Mask)
		m.InjectNestedFault(inj.After, inj.NestedMask)
	}
}
