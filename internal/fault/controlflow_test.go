package fault

import (
	"testing"

	"idemproc/internal/machine"
)

// TestControlFlowErrorRecovery exercises §2.3's "tolerating control flow
// errors": conditional branches are forced the wrong way at many points;
// the wrong path executes speculatively (stores buffered), the next
// region boundary's control-flow verification detects the failure, and
// re-execution from rp restores correct behaviour.
func TestControlFlowErrorRecovery(t *testing.T) {
	plain := machine.New(buildProgram(t, false), machine.Config{})
	want, err := plain.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	wantAcc := make([]uint64, 16)
	copy(wantAcc, plain.Mem[plain.P.GlobalBase["acc"]:plain.P.GlobalBase["acc"]+16])

	idem := buildProgram(t, true)
	injected, recovered := 0, 0
	for step := int64(3); step < 2000; step += 23 {
		m := machine.New(idem, machine.Config{
			BufferStores: true,
			Recovery:     machine.RecoverIdempotence,
		})
		m.InjectControlFlowError(step)
		got, err := m.Run(40)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if m.Stats.Faults == 0 {
			continue // step did not land on a conditional branch
		}
		injected++
		if m.Stats.Recoveries > 0 {
			recovered++
		}
		if got != want {
			t.Fatalf("step %d: result %d, want %d (recoveries=%d)", step, got, want, m.Stats.Recoveries)
		}
		base := m.P.GlobalBase["acc"]
		for i := int64(0); i < 16; i++ {
			if m.Mem[base+i] != wantAcc[i] {
				t.Fatalf("step %d: memory acc[%d] = %d, want %d", step, i, m.Mem[base+i], wantAcc[i])
			}
		}
	}
	if injected < 10 {
		t.Fatalf("only %d control-flow errors landed on branches", injected)
	}
	if recovered == 0 {
		t.Fatal("no wrong path was ever detected and recovered")
	}
	t.Logf("injected %d control-flow errors, %d required recovery", injected, recovered)
}

// TestControlFlowErrorsStacked injects several flips in one run.
func TestControlFlowErrorsStacked(t *testing.T) {
	plain := machine.New(buildProgram(t, false), machine.Config{})
	want, err := plain.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(buildProgram(t, true), machine.Config{
		BufferStores: true,
		Recovery:     machine.RecoverIdempotence,
	})
	for _, step := range []int64{50, 300, 700, 1100, 1600} {
		m.InjectControlFlowError(step)
	}
	got, err := m.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stacked flips: result %d, want %d", got, want)
	}
}
