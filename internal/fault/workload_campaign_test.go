package fault

import (
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// TestWorkloadCampaigns runs injection campaigns over real workloads (not
// just the test kernel) for every recovering scheme, requiring a correct
// result on every landed fault. This is the strongest end-to-end soundness
// check in the repository: it exercises loops whose regions wrap marks,
// calls, spills, and the φ-repair machinery under fire.
func TestWorkloadCampaigns(t *testing.T) {
	names := []string{"gcc", "gobmk", "milc", "canneal", "omnetpp"}
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		// Shrink the problem size so each of the ~30 runs stays fast.
		args := append([]uint64{}, w.Args...)
		if args[0] > 8 {
			args[0] = args[0] / 4
		}

		base, _, err := codegen.CompileModule(w.Module(), "main", w.MemWords, false, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		idem, _, err := codegen.CompileModule(w.Module(), "main", w.MemWords, true, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			s Scheme
			p *codegen.Program
		}{
			{SchemeIdempotence, Apply(idem, SchemeIdempotence)},
			{SchemeCheckpointLog, Apply(base, SchemeCheckpointLog)},
			{SchemeTMR, Apply(base, SchemeTMR)},
		} {
			res, err := Campaign(tc.p, tc.s, 25, args...)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, tc.s, err)
			}
			if res.Landed < 5 {
				t.Fatalf("%s/%v: only %d faults landed", name, tc.s, res.Landed)
			}
			if res.Correct != res.Landed {
				t.Fatalf("%s/%v: %d of %d landed faults gave wrong results",
					name, tc.s, res.Landed-res.Correct, res.Landed)
			}
		}
	}
}

// TestWorkloadControlFlowCampaign does the same for wrong-direction branch
// failures under idempotence-based recovery.
func TestWorkloadControlFlowCampaign(t *testing.T) {
	for _, name := range []string{"gcc", "canneal"} {
		w, _ := workloads.ByName(name)
		args := append([]uint64{}, w.Args...)
		if args[0] > 8 {
			args[0] = args[0] / 4
		}
		p, _, err := codegen.CompileModule(w.Module(), "main", w.MemWords, true, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ip := Apply(p, SchemeIdempotence)
		cfg := machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence}
		ref := machine.New(ip, cfg)
		want, err := ref.Run(args...)
		if err != nil {
			t.Fatal(err)
		}
		span := ref.Stats.DynInstrs
		for i := 1; i <= 15; i++ {
			m := machine.New(ip, cfg)
			m.InjectControlFlowError(span * int64(i) / 16)
			got, err := m.Run(args...)
			if err != nil {
				t.Fatalf("%s flip %d: %v", name, i, err)
			}
			if m.Stats.Faults > 0 && got != want {
				t.Fatalf("%s flip %d: got %d want %d", name, i, got, want)
			}
		}
	}
}

// TestPureCallsRecovery validates the inter-procedural pure-call
// extension under fire: regions span calls to memory-free helpers, and
// faults inside those helpers must recover via the caller's region.
func TestPureCallsRecovery(t *testing.T) {
	for _, name := range []string{"sjeng", "swaptions", "perlbench"} {
		w, _ := workloads.ByName(name)
		args := append([]uint64{}, w.Args...)
		if args[0] > 8 {
			args[0] = args[0] / 4
		}
		p, _, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords,
			codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions(), PureCalls: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ip := Apply(p, SchemeIdempotence)
		res, err := Campaign(ip, SchemeIdempotence, 25, args...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Landed < 5 {
			t.Fatalf("%s: only %d faults landed", name, res.Landed)
		}
		if res.Correct != res.Landed {
			t.Fatalf("%s: %d of %d landed faults gave wrong results under pure-calls mode",
				name, res.Landed-res.Correct, res.Landed)
		}
	}
}
