package fault

import (
	"reflect"
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/workloads"
)

// TestBuildDeterminism guards the toolchain invariant the campaign engine
// depends on: compiling the same source twice must yield bit-identical
// instruction streams (before and after recovery instrumentation), or
// seeded injections stop being reproducible across rebuilds. A map-
// iteration-ordered φ-insertion in ssa.Build once broke this.
func TestBuildDeterminism(t *testing.T) {
	w, ok := workloads.ByName("blackscholes")
	if !ok {
		t.Fatal("blackscholes workload missing")
	}
	for _, idem := range []bool{false, true} {
		build := func() *codegen.Program {
			p, _, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords,
				codegen.ModuleOptions{Idempotent: idem, Core: core.DefaultOptions()})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		p1, p2 := build(), build()
		if !reflect.DeepEqual(p1.Instrs, p2.Instrs) {
			t.Fatalf("idem=%v: codegen produced different instruction streams for identical input", idem)
		}
		schemes := []Scheme{SchemeDMR, SchemeTMR, SchemeCheckpointLog}
		if idem {
			schemes = []Scheme{SchemeIdempotence}
		}
		for _, s := range schemes {
			a, b := Apply(p1, s), Apply(p2, s)
			if !reflect.DeepEqual(a.Instrs, b.Instrs) {
				t.Fatalf("idem=%v scheme=%s: instrumented streams differ", idem, s)
			}
		}
	}
}
