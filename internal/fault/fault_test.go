package fault

import (
	"errors"
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/isa"
	"idemproc/internal/machine"
)

// kernel: a store-and-load loop with calls, enough to exercise every
// scheme's machinery.
const kernelSrc = `
global @acc [16]

func @bump(i64 %slot, i64 %v) i64 {
e:
  %g = global @acc
  %p = add %g, %slot
  %old = load %p
  %new = add %old, %v
  store %p, %new
  ret %new
}

func @main(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %slot = rem %i, 16
  %r = call @bump(%slot, %i)
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %r
}
`

func buildProgram(t *testing.T, idem bool) *codegen.Program {
	t.Helper()
	m := ir.MustParse(kernelSrc)
	p, _, err := codegen.CompileModule(m, "main", 4096, idem, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func countOps(p *codegen.Program, op isa.Op) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func countShadow(p *codegen.Program) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Shadow > 0 {
			n++
		}
	}
	return n
}

func TestTransformShapes(t *testing.T) {
	base := buildProgram(t, false)

	dmr := Apply(base, SchemeDMR)
	if countOps(dmr, isa.CHECK) == 0 || countShadow(dmr) == 0 {
		t.Fatal("DMR must insert checks and shadow copies")
	}
	tmr := Apply(base, SchemeTMR)
	if countOps(tmr, isa.MAJ) == 0 {
		t.Fatal("TMR must insert majority votes")
	}
	if countShadow(tmr) <= countShadow(dmr) {
		t.Fatal("TMR must insert more redundant copies than DMR")
	}
	cl := Apply(base, SchemeCheckpointLog)
	if got, want := countOps(cl, isa.FSTR), countOps(base, isa.FSTR)+countOps(base, isa.STR)-storeOfLR(base); got < want {
		t.Fatalf("CL must log every store: %d FSTRs, want ≥ %d", got, want)
	}
	// The original program is untouched.
	if countOps(base, isa.CHECK) != 0 {
		t.Fatal("Apply mutated its input")
	}
}

func storeOfLR(p *codegen.Program) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == isa.STR && in.Rs2 == isa.LR {
			n++
		}
	}
	return n
}

// runScheme builds, instruments, and runs one scheme configuration.
func runScheme(t *testing.T, s Scheme, faultStep int64) (*machine.Machine, uint64, error) {
	t.Helper()
	idem := s == SchemeIdempotence
	p := Apply(buildProgram(t, idem), s)
	cfg := machine.Config{}
	switch s {
	case SchemeIdempotence:
		cfg.BufferStores = true
		cfg.Recovery = machine.RecoverIdempotence
	case SchemeCheckpointLog:
		cfg.Recovery = machine.RecoverCheckpointLog
	case SchemeTMR:
		cfg.Recovery = machine.RecoverTMR
	}
	m := machine.New(p, cfg)
	if faultStep >= 0 {
		m.InjectFault(faultStep, uint(faultStep)%63+1)
	}
	got, err := m.Run(40)
	return m, got, err
}

func TestFaultFreeEquivalence(t *testing.T) {
	// All schemes must compute the same answer as the plain binary when
	// no fault is injected.
	plain := machine.New(buildProgram(t, false), machine.Config{})
	want, err := plain.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{SchemeDMR, SchemeTMR, SchemeCheckpointLog, SchemeIdempotence} {
		_, got, err := runScheme(t, s, -1)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got != want {
			t.Fatalf("%v: result %d, want %d", s, got, want)
		}
	}
}

func TestSchemeOverheadOrdering(t *testing.T) {
	// Fault-free cycle counts: every scheme costs more than the plain
	// binary, and TMR costs more than DMR.
	cycles := map[Scheme]int64{}
	for _, s := range []Scheme{SchemeDMR, SchemeTMR, SchemeCheckpointLog, SchemeIdempotence} {
		m, _, err := runScheme(t, s, -1)
		if err != nil {
			t.Fatal(err)
		}
		cycles[s] = m.Stats.Cycles
	}
	if cycles[SchemeTMR] <= cycles[SchemeDMR] {
		t.Fatalf("TMR (%d) must cost more than DMR (%d)", cycles[SchemeTMR], cycles[SchemeDMR])
	}
	if cycles[SchemeCheckpointLog] <= cycles[SchemeDMR] {
		t.Fatalf("CL (%d) must cost more than DMR (%d)", cycles[SchemeCheckpointLog], cycles[SchemeDMR])
	}
	if cycles[SchemeIdempotence] <= cycles[SchemeDMR]*100/105 {
		// Idempotence costs a bit more than the DMR baseline on the
		// original binary (marks + compilation overhead).
		t.Logf("note: idempotence %d vs DMR %d", cycles[SchemeIdempotence], cycles[SchemeDMR])
	}
}

func TestRecoveryCorrectness(t *testing.T) {
	// Inject single-bit faults at many points; every recoverable scheme
	// must still produce the fault-free answer and memory image.
	plain := machine.New(buildProgram(t, false), machine.Config{})
	want, err := plain.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	wantAcc := make([]uint64, 16)
	copy(wantAcc, plain.Mem[plain.P.GlobalBase["acc"]:plain.P.GlobalBase["acc"]+16])

	for _, s := range []Scheme{SchemeIdempotence, SchemeCheckpointLog, SchemeTMR} {
		recovered := 0
		injected := 0
		for step := int64(5); step < 600; step += 13 {
			m, got, err := runScheme(t, s, step)
			if err != nil {
				t.Fatalf("%v @%d: %v", s, step, err)
			}
			if m.Stats.Faults == 0 {
				continue // landed on a non-writing instruction
			}
			injected++
			if got != want {
				t.Fatalf("%v @%d: result %d, want %d (recoveries=%d detections=%d)",
					s, step, got, want, m.Stats.Recoveries, m.Stats.Detections)
			}
			base := m.P.GlobalBase["acc"]
			for i := int64(0); i < 16; i++ {
				if m.Mem[base+i] != wantAcc[i] {
					t.Fatalf("%v @%d: memory acc[%d] = %d, want %d", s, step, i, m.Mem[base+i], wantAcc[i])
				}
			}
			if m.Stats.Detections > 0 {
				recovered++
			}
		}
		if injected == 0 {
			t.Fatalf("%v: no faults injected", s)
		}
		if recovered == 0 {
			t.Fatalf("%v: no fault was ever detected", s)
		}
	}
}

func TestDMRDetectsWithoutRecovery(t *testing.T) {
	// With RecoverNone, a detected fault surfaces as an error.
	sawDetection := false
	for step := int64(5); step < 300 && !sawDetection; step += 7 {
		p := Apply(buildProgram(t, false), SchemeDMR)
		m := machine.New(p, machine.Config{})
		m.InjectFault(step, 3)
		_, err := m.Run(40)
		if errors.Is(err, machine.ErrDetectedUnrecoverable) {
			sawDetection = true
		}
	}
	if !sawDetection {
		t.Fatal("DMR never detected an injected fault")
	}
}

func TestInstrumentPreservesControlFlow(t *testing.T) {
	// Branch-heavy program: instrumented DMR must agree with plain run.
	src := `
func @collatz(i64 %n) i64 {
e:
  br l
l:
  %x = phi [e: %n], [odd: %x3], [even: %x2]
  %steps = phi [e: 0], [odd: %s2], [even: %s2b]
  %c = le %x, 1
  condbr %c, d, body
body:
  %r = rem %x, 2
  condbr %r, odd, even
odd:
  %t = mul %x, 3
  %x3 = add %t, 1
  %s2 = add %steps, 1
  br l
even:
  %x2 = div %x, 2
  %s2b = add %steps, 1
  br l
d:
  ret %steps
}
`
	m := ir.MustParse(src)
	p, _, err := codegen.CompileModule(m, "collatz", 4096, false, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain := machine.New(p, machine.Config{})
	want, err := plain.Run(27)
	if err != nil {
		t.Fatal(err)
	}
	if want != 111 {
		t.Fatalf("collatz(27) = %d, want 111", want)
	}
	for _, s := range []Scheme{SchemeDMR, SchemeTMR, SchemeCheckpointLog} {
		ip := Apply(p, s)
		cfg := machine.Config{}
		switch s {
		case SchemeTMR:
			cfg.Recovery = machine.RecoverTMR
		case SchemeCheckpointLog:
			// CL binaries need the log pointer initialized.
			cfg.Recovery = machine.RecoverCheckpointLog
		}
		im := machine.New(ip, cfg)
		got, err := im.Run(27)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got != want {
			t.Fatalf("%v: collatz = %d, want %d", s, got, want)
		}
	}
}

func TestCampaignAllSchemesCorrect(t *testing.T) {
	base := buildProgram(t, false)
	idem := buildProgram(t, true)
	for _, tc := range []struct {
		s Scheme
		p *codegen.Program
	}{
		{SchemeIdempotence, Apply(idem, SchemeIdempotence)},
		{SchemeCheckpointLog, Apply(base, SchemeCheckpointLog)},
		{SchemeTMR, Apply(base, SchemeTMR)},
	} {
		res, err := Campaign(tc.p, tc.s, 40, 40)
		if err != nil {
			t.Fatalf("%v: %v", tc.s, err)
		}
		if res.Landed < 10 {
			t.Fatalf("%v: only %d faults landed", tc.s, res.Landed)
		}
		if res.Correct != res.Landed {
			t.Fatalf("%v: %d of %d landed faults produced wrong results", tc.s, res.Landed-res.Correct, res.Landed)
		}
	}
}

func TestCampaignDMRDetects(t *testing.T) {
	p := Apply(buildProgram(t, false), SchemeDMR)
	res, err := Campaign(p, SchemeDMR, 30, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == 0 {
		t.Fatal("DMR campaign never detected")
	}
}
