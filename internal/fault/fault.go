// Package fault implements the §6.3 recovery-scheme code transforms of
// Figure 11 over linked machine programs:
//
//   - DMR: instruction-level dual-modular redundancy detection (the common
//     baseline, after Reis et al. / Oh et al.): every computation is
//     duplicated into a shadow bank and CHECKed at load, store and
//     control-flow boundaries.
//   - INSTRUCTION-TMR: a third copy of each non-memory instruction plus
//     single-cycle majority votes before loads and stores (Chang et al.),
//     correcting values in place.
//   - CHECKPOINT-AND-LOG: DMR detection plus STM-style undo logging —
//     before every store, the old value and address are appended to a log
//     held behind the dedicated pointer register (we use rp, which is
//     free in non-idempotent binaries); register checkpoints at log reset
//     are modelled as free, per the paper's optimistic assumption.
//   - IDEMPOTENCE: DMR detection on the idempotent binary; its MARK
//     instructions already carry the "mov rp" boundary cost.
//
// Transforms return a new instrumented program; the original is untouched.
package fault

import (
	"idemproc/internal/codegen"
	"idemproc/internal/isa"
)

// Scheme identifies a recovery configuration.
type Scheme uint8

const (
	// SchemeDMR is detection only — the baseline of Figure 12.
	SchemeDMR Scheme = iota
	// SchemeTMR is INSTRUCTION-TMR.
	SchemeTMR
	// SchemeCheckpointLog is CHECKPOINT-AND-LOG.
	SchemeCheckpointLog
	// SchemeIdempotence is idempotence-based recovery (apply to the
	// idempotent binary).
	SchemeIdempotence
)

func (s Scheme) String() string {
	switch s {
	case SchemeDMR:
		return "DMR"
	case SchemeTMR:
		return "INSTRUCTION-TMR"
	case SchemeCheckpointLog:
		return "CHECKPOINT-AND-LOG"
	case SchemeIdempotence:
		return "IDEMPOTENCE"
	}
	return "?"
}

// Apply instruments p for the scheme and returns the new program.
func Apply(p *codegen.Program, s Scheme) *codegen.Program {
	switch s {
	case SchemeDMR, SchemeIdempotence:
		return instrument(p, func(i int, in isa.Instr) ([]isa.Instr, []isa.Instr) {
			return dmrEdit(in, 1)
		})
	case SchemeTMR:
		return instrument(p, tmrEdit)
	case SchemeCheckpointLog:
		return instrument(p, clEdit)
	}
	return p
}

// DMREdit exposes the DMR transform of a single instruction for display
// purposes (Figure 11 rendering).
func DMREdit(in isa.Instr) (before, after []isa.Instr) { return dmrEdit(in, 1) }

// TMREdit exposes the TMR transform of a single instruction.
func TMREdit(i int, in isa.Instr) (before, after []isa.Instr) { return tmrEdit(i, in) }

// CLEdit exposes the checkpoint-and-log transform of a single instruction.
func CLEdit(i int, in isa.Instr) (before, after []isa.Instr) { return clEdit(i, in) }

// dmrEdit produces the DMR before/after lists for one instruction; copies
// is the number of redundant copies (1 for DMR, 2 for TMR's ALU part).
func dmrEdit(in isa.Instr, copies uint8) (before, after []isa.Instr) {
	switch {
	case in.Op == isa.LDR || in.Op == isa.FLDR:
		before = append(before, isa.Instr{Op: isa.CHECK, Rs1: in.Rs1})
		// The redundant load (Fig. 11 shows DMR duplicating loads).
		sh := in
		sh.Shadow = 1
		after = append(after, sh)
	case in.Op == isa.STR || in.Op == isa.FSTR:
		before = append(before,
			isa.Instr{Op: isa.CHECK, Rs1: in.Rs1},
			isa.Instr{Op: isa.CHECK, Rs1: in.Rs2})
	case in.Op == isa.CBZ || in.Op == isa.CBNZ:
		before = append(before, isa.Instr{Op: isa.CHECK, Rs1: in.Rs1})
	case in.Op == isa.RET:
		// Control-flow verification at the return: the return address
		// and the outputs flowing through r0/f0.
		before = append(before,
			isa.Instr{Op: isa.CHECK, Rs1: isa.LR},
			isa.Instr{Op: isa.CHECK, Rs1: isa.R0},
			isa.Instr{Op: isa.CHECK, Rs1: isa.F(0)})
	case writesArch(in):
		for c := uint8(1); c <= copies; c++ {
			sh := in
			sh.Shadow = c
			after = append(after, sh)
		}
	}
	return before, after
}

// writesArch reports whether in computes an architectural register result
// worth duplicating (ALU, moves, constants, conversions).
func writesArch(in isa.Instr) bool {
	switch in.Op {
	case isa.NOP, isa.B, isa.CBZ, isa.CBNZ, isa.CALL, isa.RET, isa.HALT,
		isa.MARK, isa.CHECK, isa.MAJ, isa.LDR, isa.FLDR, isa.STR, isa.FSTR:
		return false
	}
	// Stack-pointer arithmetic is protected by the control checks; skip
	// duplicating it so sp stays identical across banks.
	if in.Rd == isa.SP || in.Rd == isa.LR || in.Rd == isa.RP {
		return false
	}
	return true
}

// tmrEdit triples computations and votes before memory and control ops.
func tmrEdit(i int, in isa.Instr) (before, after []isa.Instr) {
	switch {
	case in.Op == isa.LDR || in.Op == isa.FLDR:
		before = append(before, isa.Instr{Op: isa.MAJ, Rd: in.Rs1})
		sh := in
		sh.Shadow = 1
		after = append(after, sh)
	case in.Op == isa.STR || in.Op == isa.FSTR:
		before = append(before,
			isa.Instr{Op: isa.MAJ, Rd: in.Rs1},
			isa.Instr{Op: isa.MAJ, Rd: in.Rs2})
	case in.Op == isa.CBZ || in.Op == isa.CBNZ:
		before = append(before, isa.Instr{Op: isa.MAJ, Rd: in.Rs1})
	case in.Op == isa.RET:
		before = append(before,
			isa.Instr{Op: isa.MAJ, Rd: isa.LR},
			isa.Instr{Op: isa.MAJ, Rd: isa.R0},
			isa.Instr{Op: isa.MAJ, Rd: isa.F(0)})
	case writesArch(in):
		for c := uint8(1); c <= 2; c++ {
			sh := in
			sh.Shadow = c
			after = append(after, sh)
		}
	}
	return before, after
}

// clEdit is CHECKPOINT-AND-LOG: DMR detection plus the undo-log sequence
// before every store (Fig. 11 column 3):
//
//	addi lr, base, #off    ; effective address (lr is free here: it is
//	                       ; saved in the frame between prologue/epilogue)
//	fldr f30, [lr, 0]      ; old value (f30 is free before any store)
//	fstr f30, [rp, 0]      ; log the value
//	str  lr,  [rp, 1]      ; log the address
//	addi rp, rp, 2         ; advance the log pointer
//
// The simulator checkpoints registers and resets rp when the log fills
// (modelled as free, per the paper). Every store is logged, including the
// prologue's LR save — a sibling call after the checkpoint overwrites the
// frame's return-address slot, and replay must be able to undo it; that
// one store uses r12 as the address scratch since LR is the value.
func clEdit(i int, in isa.Instr) (before, after []isa.Instr) {
	before, after = dmrEdit(in, 1)
	if in.Op == isa.STR || in.Op == isa.FSTR {
		scratch := isa.LR
		if in.Rs2 == isa.LR {
			// r12 is free between expansion units, which is where the
			// prologue LR save lives.
			scratch = isa.R12
		}
		logSeq := []isa.Instr{
			{Op: isa.ADDI, Rd: scratch, Rs1: in.Rs1, Imm: in.Imm, Meta: true},
			{Op: isa.FLDR, Rd: isa.F(30), Rs1: scratch, Imm: 0, Meta: true},
			{Op: isa.FSTR, Rs1: isa.RP, Rs2: isa.F(30), Imm: 0, Meta: true},
			{Op: isa.STR, Rs1: isa.RP, Rs2: scratch, Imm: 1, Meta: true},
			{Op: isa.ADDI, Rd: isa.RP, Rs1: isa.RP, Imm: 2, Meta: true},
		}
		before = append(before, logSeq...)
	}
	return before, after
}

// instrument rebuilds p with the edit function's insertions, remapping
// every static branch and call target.
func instrument(p *codegen.Program, edit func(int, isa.Instr) ([]isa.Instr, []isa.Instr)) *codegen.Program {
	n := len(p.Instrs)
	newIdx := make([]int, n+1)
	var out []isa.Instr
	var outFn []string

	for i, in := range p.Instrs {
		before, after := edit(i, in)
		// A branch to i must land at the start of i's inserted prefix so
		// the checks execute.
		newIdx[i] = len(out)
		for _, b := range before {
			out = append(out, b)
			outFn = append(outFn, p.FuncOf[i])
		}
		out = append(out, in)
		outFn = append(outFn, p.FuncOf[i])
		for _, a := range after {
			out = append(out, a)
			outFn = append(outFn, p.FuncOf[i])
		}
	}
	newIdx[n] = len(out)

	np := &codegen.Program{
		Instrs:     out,
		Entry:      newIdx[p.Entry],
		Main:       p.Main,
		FuncEntry:  map[string]int{},
		FuncOf:     outFn,
		GlobalBase: p.GlobalBase,
		GlobalEnd:  p.GlobalEnd,
		Globals:    p.Globals,
		MemWords:   p.MemWords,
		Marks:      p.Marks,
	}
	for name, e := range p.FuncEntry {
		np.FuncEntry[name] = newIdx[e]
	}
	for i := range np.Instrs {
		in := &np.Instrs[i]
		switch in.Op {
		case isa.B, isa.CBZ, isa.CBNZ, isa.CALL:
			in.Imm = int64(newIdx[in.Imm])
		}
	}
	return np
}
