package workloads

// specFP2 returns the remaining SPEC FP-like kernels.
func specFP2() []Workload {
	return []Workload{
		{
			Name: "sphinx3", Suite: SpecFP, Args: []uint64{40}, MemWords: 65536,
			// Acoustic scoring: Gaussian-mixture log-likelihood over
			// feature frames — dense FP reads, per-frame best-score write.
			Source: `
global float means[256];
global float vars[256];
global float feats[512];
global float scores[32];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 256; i = i + 1) {
        s = s * 48271 % 2147483647;
        means[i] = float(s % 200 - 100) / 20.0;
        s = s * 48271 % 2147483647;
        vars[i] = float(s % 90 + 10) / 50.0;
    }
    for (int i = 0; i < 512; i = i + 1) {
        s = s * 48271 % 2147483647;
        feats[i] = float(s % 200 - 100) / 20.0;
    }
}

func score(int frame, int mix) float {
    float acc = 0.0;
    for (int d = 0; d < 8; d = d + 1) {
        float diff = feats[(frame * 8 + d) % 512] - means[mix * 8 + d];
        acc = acc - diff * diff / vars[mix * 8 + d];
    }
    return acc;
}

func main(int frames) int {
    init(37);
    float total = 0.0;
    for (int f = 0; f < frames; f = f + 1) {
        float best = -1000000.0;
        for (int m = 0; m < 32; m = m + 1) {
            float sc = score(f, m);
            if (sc > best) { best = sc; }
        }
        scores[f % 32] = best;
        total = total + best;
    }
    return int(-total);
}
`,
		},
		{
			Name: "GemsFDTD", Suite: SpecFP, Args: []uint64{18}, MemWords: 65536,
			// Finite-difference time-domain field update: two coupled 2D
			// grids updated alternately (streaming, like the paper's FDTD).
			Source: `
global float ez[400];
global float hx[400];
global float hy[400];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 400; i = i + 1) {
        s = s * 48271 % 2147483647;
        ez[i] = float(s % 100) / 1000.0;
        hx[i] = 0.0;
        hy[i] = 0.0;
    }
}

func stepH() void {
    for (int r = 0; r < 19; r = r + 1) {
        for (int c = 0; c < 19; c = c + 1) {
            int i = r * 20 + c;
            hx[i] = hx[i] - (ez[i + 20] - ez[i]) * 0.5;
            hy[i] = hy[i] + (ez[i + 1] - ez[i]) * 0.5;
        }
    }
}

func stepE() void {
    for (int r = 1; r < 20; r = r + 1) {
        for (int c = 1; c < 20; c = c + 1) {
            int i = r * 20 + c;
            ez[i] = ez[i] + (hy[i] - hy[i - 1] - hx[i] + hx[i - 20]) * 0.5;
        }
    }
}

func main(int steps) int {
    init(9);
    for (int t = 0; t < steps; t = t + 1) {
        stepH();
        stepE();
        ez[210] = ez[210] + 1.0;  // point source
    }
    float energy = 0.0;
    for (int i = 0; i < 400; i = i + 1) {
        energy = energy + ez[i] * ez[i];
    }
    return int(energy);
}
`,
		},
	}
}

// parsec2 returns the remaining PARSEC-like kernels.
func parsec2() []Workload {
	return []Workload{
		{
			Name: "dedup", Suite: Parsec, Args: []uint64{8}, MemWords: 65536,
			// Content-defined chunking and deduplication: rolling hash to
			// split a stream, fingerprint table to dedupe chunks.
			Source: `
global int stream[1024];
global int fingerprints[256];
global int uniq = 0;
global int dups = 0;

func genstream(int seed) void {
    int s = seed;
    for (int i = 0; i < 1024; i = i + 1) {
        s = s * 1103515245 + 12345;
        int v = (s >> 16) % 64;
        if (v < 0) { v = -v; }
        // Repeat earlier content often so duplicates exist.
        if (i >= 512 && s % 3 != 0) {
            stream[i] = stream[i - 512];
        } else {
            stream[i] = v;
        }
    }
}

func chunkAndDedupe() void {
    int roll = 0;
    int start = 0;
    for (int i = 0; i < 1024; i = i + 1) {
        roll = (roll * 33 + stream[i]) % 65536;
        int boundary = 0;
        if (roll % 64 == 13) { boundary = 1; }
        if (i - start >= 128) { boundary = 1; }
        if (boundary == 1 || i == 1023) {
            int fp = 5381;
            for (int j = start; j <= i; j = j + 1) {
                fp = (fp * 31 + stream[j]) % 1000000007;
            }
            int slot = fp % 256;
            if (fp < 0) { slot = (-fp) % 256; }
            if (fingerprints[slot] == fp) {
                dups = dups + 1;
            } else {
                fingerprints[slot] = fp;
                uniq = uniq + 1;
            }
            start = i + 1;
        }
    }
}

func main(int rounds) int {
    for (int r = 0; r < rounds; r = r + 1) {
        genstream(r * 77 + 1);
        chunkAndDedupe();
    }
    return uniq * 10000 + dups;
}
`,
		},
		{
			Name: "x264", Suite: Parsec, Args: []uint64{40}, MemWords: 65536,
			// Block transform + quantization: 4x4 Hadamard-ish transform,
			// quantize, reconstruct, accumulate distortion.
			Source: `
global int pix[1024];
global int coeff[16];

func genpix(int seed) void {
    int s = seed;
    for (int i = 0; i < 1024; i = i + 1) {
        s = s * 1103515245 + 12345;
        int v = (s >> 18) % 256;
        if (v < 0) { v = -v; }
        pix[i] = v;
    }
}

func transform(int base) void {
    for (int r = 0; r < 4; r = r + 1) {
        int a = pix[base + r * 32 + 0];
        int b = pix[base + r * 32 + 1];
        int c = pix[base + r * 32 + 2];
        int d = pix[base + r * 32 + 3];
        coeff[r * 4 + 0] = a + b + c + d;
        coeff[r * 4 + 1] = a - b + c - d;
        coeff[r * 4 + 2] = a + b - c - d;
        coeff[r * 4 + 3] = a - b - c + d;
    }
}

func quantize(int q) int {
    int nz = 0;
    for (int i = 0; i < 16; i = i + 1) {
        coeff[i] = coeff[i] / q;
        if (coeff[i] != 0) { nz = nz + 1; }
    }
    return nz;
}

func main(int frames) int {
    int check = 0;
    for (int fr = 0; fr < frames; fr = fr + 1) {
        genpix(fr * 13 + 3);
        for (int by = 0; by < 8; by = by + 1) {
            for (int bx = 0; bx < 8; bx = bx + 1) {
                transform(by * 128 + bx * 4);
                int nz = quantize(8 + fr % 24);
                int energy = 0;
                for (int i = 0; i < 16; i = i + 1) {
                    energy = energy + coeff[i] * coeff[i];
                }
                check = (check + nz * 1000 + energy) % 1000000007;
            }
        }
    }
    return check;
}
`,
		},
		{
			Name: "raytrace", Suite: Parsec, Args: []uint64{500}, MemWords: 65536,
			// Hierarchical intersection: rays walk a two-level bounding
			// grid before exact sphere tests (branchier than povray).
			Source: `
global float cx[64];
global float cy[64];
global float cr[64];
global int cellStart[16];
global int cellList[128];

func init(int seed) void {
    int s = seed;
    int li = 0;
    for (int cell = 0; cell < 16; cell = cell + 1) {
        cellStart[cell] = li;
        int cnt = cell % 3 + 2;
        for (int k = 0; k < cnt && li < 128; k = k + 1) {
            int obj = (cell * 4 + k) % 64;
            cellList[li] = obj;
            li = li + 1;
        }
    }
    for (int i = 0; i < 64; i = i + 1) {
        s = s * 48271 % 2147483647;
        cx[i] = float(s % 160) / 10.0;
        s = s * 48271 % 2147483647;
        cy[i] = float(s % 160) / 10.0;
        cr[i] = float(i % 5) / 4.0 + 0.3;
    }
}

func hit(float ox, float oy, int obj) int {
    float dx = cx[obj] - ox;
    float dy = cy[obj] - oy;
    return int(dx * dx + dy * dy < cr[obj] * cr[obj] + 4.0);
}

func trace(float ox, float oy) int {
    int cellX = int(ox / 4.0);
    int cellY = int(oy / 4.0);
    if (cellX < 0) { cellX = 0; }
    if (cellX > 3) { cellX = 3; }
    if (cellY < 0) { cellY = 0; }
    if (cellY > 3) { cellY = 3; }
    int cell = cellY * 4 + cellX;
    int from = cellStart[cell];
    int to = 128;
    if (cell < 15) { to = cellStart[cell + 1]; }
    int hits = 0;
    for (int li = from; li < to; li = li + 1) {
        hits = hits + hit(ox, oy, cellList[li]);
    }
    return hits;
}

func main(int rays) int {
    init(43);
    int total = 0;
    int s = 3;
    for (int r = 0; r < rays; r = r + 1) {
        s = s * 48271 % 2147483647;
        float ox = float(s % 160) / 10.0;
        s = s * 48271 % 2147483647;
        float oy = float(s % 160) / 10.0;
        total = total + trace(ox, oy);
    }
    return total;
}
`,
		},
		{
			Name: "facesim", Suite: Parsec, Args: []uint64{30}, MemWords: 65536,
			// Mass–spring mesh relaxation: per-vertex force accumulation
			// from neighbours, then integration (regular FP streaming).
			Source: `
global float posx[100];
global float posy[100];
global float velx[100];
global float vely[100];

func init() void {
    for (int r = 0; r < 10; r = r + 1) {
        for (int c = 0; c < 10; c = c + 1) {
            posx[r * 10 + c] = float(c);
            posy[r * 10 + c] = float(r);
            velx[r * 10 + c] = 0.0;
            vely[r * 10 + c] = 0.0;
        }
    }
    posx[55] = 5.8;  // perturb one vertex
    posy[55] = 5.8;
}

func springStep() void {
    for (int r = 0; r < 10; r = r + 1) {
        for (int c = 0; c < 10; c = c + 1) {
            int i = r * 10 + c;
            float fx = 0.0;
            float fy = 0.0;
            if (c > 0) { fx = fx + posx[i - 1] - posx[i] + 1.0; fy = fy + posy[i - 1] - posy[i]; }
            if (c < 9) { fx = fx + posx[i + 1] - posx[i] - 1.0; fy = fy + posy[i + 1] - posy[i]; }
            if (r > 0) { fx = fx + posx[i - 10] - posx[i]; fy = fy + posy[i - 10] - posy[i] + 1.0; }
            if (r < 9) { fx = fx + posx[i + 10] - posx[i]; fy = fy + posy[i + 10] - posy[i] - 1.0; }
            velx[i] = (velx[i] + fx * 0.1) * 0.98;
            vely[i] = (vely[i] + fy * 0.1) * 0.98;
        }
    }
    for (int i = 0; i < 100; i = i + 1) {
        posx[i] = posx[i] + velx[i] * 0.1;
        posy[i] = posy[i] + vely[i] * 0.1;
    }
}

func main(int steps) int {
    init();
    for (int t = 0; t < steps; t = t + 1) { springStep(); }
    float drift = 0.0;
    for (int r = 0; r < 10; r = r + 1) {
        for (int c = 0; c < 10; c = c + 1) {
            float dx = posx[r * 10 + c] - float(c);
            float dy = posy[r * 10 + c] - float(r);
            drift = drift + dx * dx + dy * dy;
        }
    }
    return int(drift * 100000.0);
}
`,
		},
	}
}
