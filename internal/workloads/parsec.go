package workloads

// parsec returns the PARSEC-like kernels: streaming, data-parallel codes
// that read input arrays and write mostly-disjoint outputs — the
// memory-streaming character the paper credits for PARSEC's long
// idempotent paths and low overheads.
func parsec() []Workload {
	return []Workload{
		{
			Name: "blackscholes", Suite: Parsec, Args: []uint64{500}, MemWords: 32768,
			// Option pricing over a portfolio: pure per-element
			// computation streaming into a result array (rational
			// approximations replace exp/log/CDF).
			Source: `
global float spot[128];
global float strike[128];
global float tte[128];
global float price[128];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 128; i = i + 1) {
        s = s * 48271 % 2147483647;
        spot[i] = float(s % 100 + 50);
        s = s * 48271 % 2147483647;
        strike[i] = float(s % 100 + 50);
        tte[i] = float(i % 24 + 1) / 12.0;
    }
}

// ncdf approximates the standard normal CDF with a logistic curve.
func ncdf(float x) float {
    float t = 1.0 + x * x * 0.15;
    float z = x * 1.702 / t + x * 0.1;
    // logistic(z) = 1 / (1 + e^-z), e^-z ~ rational approx
    float ez = 1.0 - z / 2.0 + z * z / 8.0 - z * z * z / 48.0;
    if (ez < 0.01) { ez = 0.01; }
    return 1.0 / (1.0 + ez * ez);
}

func bs(int i) float {
    float m = spot[i] / strike[i] - 1.0;     // moneyness proxy for log
    float v = 0.3;
    float sq = tte[i];
    sq = (sq + tte[i] / sq) * 0.5;
    sq = (sq + tte[i] / sq) * 0.5;
    float d1 = (m + v * v * tte[i] * 0.5) / (v * sq);
    float d2 = d1 - v * sq;
    return spot[i] * ncdf(d1) - strike[i] * ncdf(d2) * (1.0 - 0.05 * tte[i]);
}

func main(int rounds) int {
    init(41);
    float acc = 0.0;
    for (int r = 0; r < rounds; r = r + 1) {
        int i = r % 128;
        price[i] = bs(i);
        acc = acc + price[i];
    }
    return int(acc);
}
`,
		},
		{
			Name: "bodytrack", Suite: Parsec, Args: []uint64{40}, MemWords: 32768,
			// Particle-filter weight update and resampling accumulation.
			Source: `
global float particles[128];
global float weights[128];
global float observation = 3.7;

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 128; i = i + 1) {
        s = s * 48271 % 2147483647;
        particles[i] = float(s % 1000) / 100.0;
    }
}

func reweigh() float {
    float total = 0.0;
    for (int i = 0; i < 128; i = i + 1) {
        float d = particles[i] - observation;
        float w = 1.0 / (1.0 + d * d);
        weights[i] = w;
        total = total + w;
    }
    return total;
}

func drift(int seed) void {
    int s = seed;
    for (int i = 0; i < 128; i = i + 1) {
        s = s * 48271 % 2147483647;
        particles[i] = particles[i] * 0.98 + float(s % 100) / 500.0;
    }
}

func main(int steps) int {
    init(29);
    float acc = 0.0;
    for (int t = 0; t < steps; t = t + 1) {
        acc = acc + reweigh();
        drift(t * 17 + 1);
    }
    return int(acc * 100.0);
}
`,
		},
		{
			Name: "canneal", Suite: Parsec, Args: []uint64{800}, MemWords: 32768,
			// Simulated-annealing element swaps with cost deltas: random
			// access, occasional in-place swaps.
			Source: `
global int placement[256];
global int netA[256];
global int netB[256];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 256; i = i + 1) {
        placement[i] = i;
        s = s * 48271 % 2147483647;
        netA[i] = s % 256;
        s = s * 48271 % 2147483647;
        netB[i] = s % 256;
    }
}

func netcost(int n) int {
    int d = placement[netA[n]] - placement[netB[n]];
    if (d < 0) { d = -d; }
    return d;
}

func main(int swaps) int {
    init(53);
    int s = 99;
    int accepted = 0;
    int cost = 0;
    for (int n = 0; n < 256; n = n + 1) { cost = cost + netcost(n); }
    for (int k = 0; k < swaps; k = k + 1) {
        s = s * 48271 % 2147483647;
        int a = s % 256;
        s = s * 48271 % 2147483647;
        int b = s % 256;
        int before = netcost(a) + netcost(b);
        int tmp = placement[a];
        placement[a] = placement[b];
        placement[b] = tmp;
        int after = netcost(a) + netcost(b);
        int delta = after - before;
        int temp = 100 - k * 100 / swaps;
        if (delta < temp) {
            accepted = accepted + 1;
            cost = cost + delta;
        } else {
            tmp = placement[a];
            placement[a] = placement[b];
            placement[b] = tmp;
        }
    }
    return cost * 1000 + accepted % 1000;
}
`,
		},
		{
			Name: "fluidanimate", Suite: Parsec, Args: []uint64{12}, MemWords: 65536,
			// Particle-grid density: bin particles, accumulate cell
			// densities, stream updated velocities.
			Source: `
global float posx[200];
global float posy[200];
global float velx[200];
global float vely[200];
global float density[64];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 200; i = i + 1) {
        s = s * 48271 % 2147483647;
        posx[i] = float(s % 800) / 100.0;
        s = s * 48271 % 2147483647;
        posy[i] = float(s % 800) / 100.0;
        velx[i] = 0.0;
        vely[i] = 0.0;
    }
}

func cellOf(int i) int {
    int cx = int(posx[i]);
    int cy = int(posy[i]);
    if (cx > 7) { cx = 7; }
    if (cy > 7) { cy = 7; }
    if (cx < 0) { cx = 0; }
    if (cy < 0) { cy = 0; }
    return cy * 8 + cx;
}

func step() void {
    for (int c = 0; c < 64; c = c + 1) { density[c] = 0.0; }
    for (int i = 0; i < 200; i = i + 1) {
        int c = cellOf(i);
        density[c] = density[c] + 1.0;
    }
    for (int i = 0; i < 200; i = i + 1) {
        int c = cellOf(i);
        float push = density[c] * 0.01;
        velx[i] = velx[i] * 0.95 + push;
        vely[i] = vely[i] * 0.95 - push * 0.5;
        posx[i] = posx[i] + velx[i] * 0.1;
        posy[i] = posy[i] + vely[i] * 0.1;
        if (posx[i] < 0.0) { posx[i] = 0.0; velx[i] = -velx[i]; }
        if (posx[i] > 8.0) { posx[i] = 8.0; velx[i] = -velx[i]; }
        if (posy[i] < 0.0) { posy[i] = 0.0; vely[i] = -vely[i]; }
        if (posy[i] > 8.0) { posy[i] = 8.0; vely[i] = -vely[i]; }
    }
}

func main(int steps) int {
    init(61);
    for (int t = 0; t < steps; t = t + 1) { step(); }
    float acc = 0.0;
    for (int i = 0; i < 200; i = i + 1) { acc = acc + posx[i] + posy[i]; }
    return int(acc * 10.0);
}
`,
		},
		{
			Name: "streamcluster", Suite: Parsec, Args: []uint64{15}, MemWords: 65536,
			// k-median assignment: distance computation streaming over
			// points, writing only assignment/cost outputs.
			Source: `
global float pts[512];
global float centers[32];
global int assign[128];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 512; i = i + 1) {
        s = s * 48271 % 2147483647;
        pts[i] = float(s % 1000) / 100.0;
    }
    for (int c = 0; c < 32; c = c + 1) {
        centers[c] = pts[c * 16 % 512];
    }
}

func assignAll() float {
    float total = 0.0;
    for (int p = 0; p < 128; p = p + 1) {
        float best = 1000000.0;
        int bi = 0;
        for (int c = 0; c < 8; c = c + 1) {
            float d = 0.0;
            for (int k = 0; k < 4; k = k + 1) {
                float diff = pts[p * 4 + k] - centers[c * 4 + k];
                d = d + diff * diff;
            }
            if (d < best) { best = d; bi = c; }
        }
        assign[p] = bi;
        total = total + best;
    }
    return total;
}

func recenter() void {
    for (int c = 0; c < 8; c = c + 1) {
        for (int k = 0; k < 4; k = k + 1) {
            float sum = 0.0;
            float n = 0.0;
            for (int p = 0; p < 128; p = p + 1) {
                if (assign[p] == c) {
                    sum = sum + pts[p * 4 + k];
                    n = n + 1.0;
                }
            }
            if (n > 0.0) { centers[c * 4 + k] = sum / n; }
        }
    }
}

func main(int iters) int {
    init(67);
    float cost = 0.0;
    for (int t = 0; t < iters; t = t + 1) {
        cost = assignAll();
        recenter();
    }
    return int(cost * 10.0);
}
`,
		},
		{
			Name: "swaptions", Suite: Parsec, Args: []uint64{300}, MemWords: 32768,
			// Monte-Carlo path simulation accumulating payoffs: long
			// compute chains per path, one output write per path.
			Source: `
global float payoff[64];

func lcg(int s) int {
    return s * 48271 % 2147483647;
}

func simulate(int seed, int steps) float {
    float rate = 0.05;
    int s = seed;
    for (int t = 0; t < steps; t = t + 1) {
        s = lcg(s);
        float shock = float(s % 200 - 100) / 5000.0;
        rate = rate + rate * shock + 0.0001;
        if (rate < 0.001) { rate = 0.001; }
    }
    float val = rate - 0.05;
    if (val < 0.0) { val = 0.0; }
    return val;
}

func main(int paths) int {
    float acc = 0.0;
    for (int p = 0; p < paths; p = p + 1) {
        float v = simulate(p * 2654435761 % 2147483647 + 1, 50);
        payoff[p % 64] = v;
        acc = acc + v;
    }
    return int(acc * 100000.0);
}
`,
		},
		{
			Name: "ferret", Suite: Parsec, Args: []uint64{60}, MemWords: 65536,
			// Feature-vector similarity ranking: streaming distance
			// computations with a small in-place top-k list.
			Source: `
global float db[1024];
global float query[16];
global int topIdx[4];
global float topDist[4];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 1024; i = i + 1) {
        s = s * 48271 % 2147483647;
        db[i] = float(s % 1000) / 1000.0;
    }
}

func rank(int qseed) int {
    int s = qseed;
    for (int k = 0; k < 16; k = k + 1) {
        s = s * 48271 % 2147483647;
        query[k] = float(s % 1000) / 1000.0;
    }
    for (int t = 0; t < 4; t = t + 1) { topIdx[t] = -1; topDist[t] = 1000000.0; }
    for (int v = 0; v < 64; v = v + 1) {
        float d = 0.0;
        for (int k = 0; k < 16; k = k + 1) {
            float diff = db[v * 16 + k] - query[k];
            d = d + diff * diff;
        }
        // Insert into the top-4 list.
        int pos = 3;
        if (d < topDist[3]) {
            while (pos > 0 && d < topDist[pos - 1]) {
                topDist[pos] = topDist[pos - 1];
                topIdx[pos] = topIdx[pos - 1];
                pos = pos - 1;
            }
            topDist[pos] = d;
            topIdx[pos] = v;
        }
    }
    return topIdx[0];
}

func main(int queries) int {
    init(71);
    int check = 0;
    for (int q = 0; q < queries; q = q + 1) {
        check = (check * 31 + rank(q * 13 + 5)) % 1000000007;
    }
    return check;
}
`,
		},
	}
}
