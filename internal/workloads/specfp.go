package workloads

// specFP returns the SPEC FP-like kernels: regular floating-point loop
// nests over array state. They overwrite their inputs comparatively
// rarely (streaming or ping-pong buffers) and lean on the 32-register
// float file, which is why the paper sees lower overheads here.
func specFP() []Workload {
	return []Workload{
		{
			Name: "milc", Suite: SpecFP, Args: []uint64{20}, MemWords: 32768,
			// 2D Jacobi-style stencil relaxation with ping-pong buffers.
			Source: `
global float a[400];
global float b[400];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 400; i = i + 1) {
        s = s * 1103515245 + 12345;
        int v = (s >> 16) % 1000;
        if (v < 0) { v = -v; }
        a[i] = float(v) / 1000.0;
    }
}

func sweep() void {
    for (int r = 1; r < 19; r = r + 1) {
        for (int c = 1; c < 19; c = c + 1) {
            int i = r * 20 + c;
            b[i] = (a[i - 1] + a[i + 1] + a[i - 20] + a[i + 20]) * 0.25;
        }
    }
    for (int r = 1; r < 19; r = r + 1) {
        for (int c = 1; c < 19; c = c + 1) {
            int i = r * 20 + c;
            a[i] = b[i];
        }
    }
}

func main(int iters) int {
    init(77);
    for (int k = 0; k < iters; k = k + 1) { sweep(); }
    float sum = 0.0;
    for (int i = 0; i < 400; i = i + 1) { sum = sum + a[i]; }
    return int(sum * 1000.0);
}
`,
		},
		{
			Name: "namd", Suite: SpecFP, Args: []uint64{10}, MemWords: 32768,
			// N-body force accumulation: compute-dense inner loop reading
			// positions, accumulating forces.
			Source: `
global float px[64];
global float py[64];
global float fx[64];
global float fy[64];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 64; i = i + 1) {
        s = s * 48271 % 2147483647;
        px[i] = float(s % 1000) / 100.0;
        s = s * 48271 % 2147483647;
        py[i] = float(s % 1000) / 100.0;
    }
}

func forces() void {
    for (int i = 0; i < 64; i = i + 1) {
        float ax = 0.0;
        float ay = 0.0;
        for (int j = 0; j < 64; j = j + 1) {
            if (j != i) {
                float dx = px[j] - px[i];
                float dy = py[j] - py[i];
                float r2 = dx * dx + dy * dy + 0.01;
                float inv = 1.0 / r2;
                ax = ax + dx * inv;
                ay = ay + dy * inv;
            }
        }
        fx[i] = ax;
        fy[i] = ay;
    }
}

func step() void {
    for (int i = 0; i < 64; i = i + 1) {
        px[i] = px[i] + fx[i] * 0.001;
        py[i] = py[i] + fy[i] * 0.001;
    }
}

func main(int iters) int {
    init(3);
    for (int k = 0; k < iters; k = k + 1) { forces(); step(); }
    float sum = 0.0;
    for (int i = 0; i < 64; i = i + 1) { sum = sum + fx[i] * fx[i] + fy[i] * fy[i]; }
    return int(sum * 100.0);
}
`,
		},
		{
			Name: "dealII", Suite: SpecFP, Args: []uint64{25}, MemWords: 32768,
			// Gauss–Seidel iterations on a dense SPD-ish system: in-place
			// solution updates (shorter FP paths, like the paper's
			// dealII outlier behaviour).
			Source: `
global float mat[400];
global float rhs[20];
global float x[20];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 20; i = i + 1) {
        for (int j = 0; j < 20; j = j + 1) {
            s = s * 48271 % 2147483647;
            float v = float(s % 100) / 100.0;
            if (i == j) { v = v + 25.0; }
            mat[i * 20 + j] = v;
        }
        s = s * 48271 % 2147483647;
        rhs[i] = float(s % 1000) / 10.0;
        x[i] = 0.0;
    }
}

func sweep() void {
    for (int i = 0; i < 20; i = i + 1) {
        float acc = rhs[i];
        for (int j = 0; j < 20; j = j + 1) {
            if (j != i) { acc = acc - mat[i * 20 + j] * x[j]; }
        }
        x[i] = acc / mat[i * 20 + i];
    }
}

func main(int iters) int {
    init(11);
    for (int k = 0; k < iters; k = k + 1) { sweep(); }
    float sum = 0.0;
    for (int i = 0; i < 20; i = i + 1) { sum = sum + x[i]; }
    return int(sum * 1000.0);
}
`,
		},
		{
			Name: "soplex", Suite: SpecFP, Args: []uint64{18}, MemWords: 32768,
			// Simplex-style pivoting on a small dense tableau.
			Source: `
global float tab[336];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 336; i = i + 1) {
        s = s * 48271 % 2147483647;
        tab[i] = float(s % 200 - 100) / 50.0;
    }
}

func pivot(int pr, int pc) void {
    float p = tab[pr * 21 + pc];
    if (p < 0.0001 && p > -0.0001) { return; }
    for (int j = 0; j < 21; j = j + 1) {
        tab[pr * 21 + j] = tab[pr * 21 + j] / p;
    }
    for (int i = 0; i < 16; i = i + 1) {
        if (i != pr) {
            float f = tab[i * 21 + pc];
            for (int j = 0; j < 21; j = j + 1) {
                tab[i * 21 + j] = tab[i * 21 + j] - f * tab[pr * 21 + j];
            }
        }
    }
}

func main(int iters) int {
    init(19);
    for (int k = 0; k < iters; k = k + 1) {
        pivot(k % 16, (k * 5 + 1) % 21);
    }
    float sum = 0.0;
    for (int i = 0; i < 336; i = i + 1) {
        float v = tab[i];
        if (v < 0.0) { v = -v; }
        if (v < 1000.0) { sum = sum + v; }
    }
    return int(sum);
}
`,
		},
		{
			Name: "povray", Suite: SpecFP, Args: []uint64{900}, MemWords: 32768,
			// Batched ray–sphere intersection: long straight-line FP
			// computation per ray, writes only to an output buffer.
			Source: `
global float sx[16];
global float sy[16];
global float sz[16];
global float sr[16];
global float img[256];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 16; i = i + 1) {
        s = s * 48271 % 2147483647;
        sx[i] = float(s % 100) / 10.0;
        s = s * 48271 % 2147483647;
        sy[i] = float(s % 100) / 10.0;
        s = s * 48271 % 2147483647;
        sz[i] = float(s % 50) / 10.0 + 5.0;
        sr[i] = float(i % 4) / 2.0 + 0.5;
    }
}

func trace(float ox, float oy) float {
    float best = 1000000.0;
    for (int i = 0; i < 16; i = i + 1) {
        float dx = sx[i] - ox;
        float dy = sy[i] - oy;
        float dz = sz[i];
        float b = dz;                      // ray direction (0,0,1)
        float c = dx * dx + dy * dy + dz * dz - sr[i] * sr[i];
        float disc = b * b - c;
        if (disc > 0.0) {
            // Newton iterations for sqrt(disc).
            float s = disc;
            if (s > 1.0) { s = disc / 2.0 + 0.5; }
            s = (s + disc / s) * 0.5;
            s = (s + disc / s) * 0.5;
            s = (s + disc / s) * 0.5;
            float t = b - s;
            if (t > 0.0 && t < best) { best = t; }
        }
    }
    return best;
}

func main(int rays) int {
    init(23);
    float acc = 0.0;
    for (int r = 0; r < rays; r = r + 1) {
        float ox = float(r % 16) - 8.0;
        float oy = float(r / 16 % 16) - 8.0;
        float t = trace(ox, oy);
        if (t < 1000000.0) {
            img[r % 256] = t;
            acc = acc + t;
        }
    }
    return int(acc);
}
`,
		},
		{
			Name: "lbm", Suite: SpecFP, Args: []uint64{15}, MemWords: 65536,
			// Lattice streaming update: pure streaming from one buffer to
			// another (the paper's long-ideal-path outlier).
			Source: `
global float f0[512];
global float f1[512];
global float f2[512];
global float g0[512];
global float g1[512];
global float g2[512];

func init(int seed) void {
    int s = seed;
    for (int i = 0; i < 512; i = i + 1) {
        s = s * 48271 % 2147483647;
        f0[i] = float(s % 100) / 100.0 + 1.0;
        f1[i] = float(s % 70) / 100.0;
        f2[i] = float(s % 30) / 100.0;
    }
}

func stream() void {
    for (int i = 1; i < 511; i = i + 1) {
        float rho = f0[i] + f1[i] + f2[i];
        float u = (f1[i] - f2[i]) / rho;
        float eq0 = rho * (1.0 - u * u) * 0.666;
        float eq1 = rho * (u * u + u) * 0.5 + rho * 0.166;
        float eq2 = rho * (u * u - u) * 0.5 + rho * 0.166;
        g0[i] = f0[i] + (eq0 - f0[i]) * 0.6;
        g1[i + 1] = f1[i] + (eq1 - f1[i]) * 0.6;
        g2[i - 1] = f2[i] + (eq2 - f2[i]) * 0.6;
    }
}

func swapback() void {
    for (int i = 0; i < 512; i = i + 1) {
        f0[i] = g0[i];
        f1[i] = g1[i];
        f2[i] = g2[i];
    }
}

func main(int iters) int {
    init(7);
    for (int k = 0; k < iters; k = k + 1) { stream(); swapback(); }
    float mass = 0.0;
    for (int i = 0; i < 512; i = i + 1) { mass = mass + f0[i] + f1[i] + f2[i]; }
    return int(mass * 100.0);
}
`,
		},
	}
}
