package workloads

import (
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/machine"
	"idemproc/internal/ssa"
)

func TestSuiteComposition(t *testing.T) {
	all := All()
	if len(all) != 31 {
		t.Fatalf("suite has %d workloads, want 31", len(all))
	}
	counts := map[Suite]int{}
	names := map[string]bool{}
	for _, w := range all {
		counts[w.Suite]++
		if names[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if len(w.Args) == 0 || w.MemWords == 0 {
			t.Fatalf("%s: missing args or memory size", w.Name)
		}
	}
	if counts[SpecInt] != 12 || counts[SpecFP] != 8 || counts[Parsec] != 11 {
		t.Fatalf("suite split = %v", counts)
	}
	if _, ok := ByName("lbm"); !ok {
		t.Fatal("ByName(lbm) failed")
	}
}

// interpResult runs the workload under the reference interpreter.
func interpResult(t *testing.T, w Workload) ir.Word {
	t.Helper()
	m := w.Module()
	for _, f := range m.Funcs {
		ssa.PromoteAllocas(f)
		ssa.Build(f)
	}
	in := ir.NewInterp(m, w.MemWords)
	in.MaxSteps = 500_000_000
	args := make([]ir.Word, len(w.Args))
	for i, a := range w.Args {
		args[i] = ir.Word(a)
	}
	got, err := in.Run("main", args...)
	if err != nil {
		t.Fatalf("%s: interp: %v", w.Name, err)
	}
	return got
}

func TestAllWorkloadsInterp(t *testing.T) {
	seen := map[ir.Word]int{}
	for _, w := range All() {
		got := interpResult(t, w)
		// Determinism across runs.
		if again := interpResult(t, w); again != got {
			t.Fatalf("%s: nondeterministic (%d vs %d)", w.Name, got, again)
		}
		seen[got]++
	}
	// Checksums should be varied (kernels actually compute something).
	if len(seen) < 15 {
		t.Fatalf("checksums suspiciously uniform: %v", seen)
	}
}

func TestAllWorkloadsBothBinaries(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want := interpResult(t, w)
			for _, idem := range []bool{false, true} {
				m := w.Module()
				p, _, err := codegen.CompileModule(m, "main", w.MemWords, idem, core.DefaultOptions())
				if err != nil {
					t.Fatalf("idem=%v: %v", idem, err)
				}
				mach := machine.New(p, machine.Config{BufferStores: idem, TrackPaths: idem})
				got, err := mach.Run(w.Args...)
				if err != nil {
					t.Fatalf("idem=%v: %v", idem, err)
				}
				if got != uint64(want) {
					t.Fatalf("idem=%v: machine %d, interp %d", idem, got, want)
				}
				if idem && mach.Stats.Marks == 0 {
					t.Fatal("idempotent binary executed no region boundaries")
				}
			}
		})
	}
}
