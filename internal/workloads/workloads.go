// Package workloads provides the benchmark suite: synthetic kernels
// written in idc that substitute for the paper's SPEC CPU2006 and PARSEC
// programs (which are unavailable here). Each kernel mirrors the
// *character* of its namesake — SPEC INT: pointer-chasing, branchy,
// hash/DP/search-style integer codes; SPEC FP: regular floating-point
// loop nests; PARSEC: streaming, data-parallel kernels that rarely
// overwrite their inputs — because those characteristics, not the exact
// programs, drive the paper's trends (input-overwrite frequency sets
// idempotent path lengths, §3; register pressure and FP-vs-INT register
// counts set the overheads, §6.2).
package workloads

import (
	"fmt"

	"idemproc/internal/ir"
	"idemproc/internal/lang"
)

// Suite labels a benchmark group.
type Suite string

const (
	SpecInt Suite = "SPEC INT"
	SpecFP  Suite = "SPEC FP"
	Parsec  Suite = "PARSEC"
)

// Workload is one benchmark program.
type Workload struct {
	// Name follows the substituted benchmark's name.
	Name  string
	Suite Suite
	// Source is the idc program; execution starts at "main".
	Source string
	// Args are the arguments to main (problem size first).
	Args []uint64
	// MemWords sizes the machine memory.
	MemWords int
}

// Module compiles a fresh IR module for the workload (each caller gets
// its own copy, since compilation pipelines mutate IR in place).
func (w Workload) Module() *ir.Module {
	m, err := lang.Compile(w.Source)
	if err != nil {
		panic(fmt.Sprintf("workloads: %s does not compile: %v", w.Name, err))
	}
	return m
}

// All returns every workload, SPEC INT then SPEC FP then PARSEC.
func All() []Workload {
	var out []Workload
	out = append(out, specInt()...)
	out = append(out, specInt2()...)
	out = append(out, specFP()...)
	out = append(out, specFP2()...)
	out = append(out, parsec()...)
	out = append(out, parsec2()...)
	return out
}

// BySuite filters All by suite.
func BySuite(s Suite) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
