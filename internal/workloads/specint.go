package workloads

// specInt returns the SPEC INT-like kernels: branchy, pointer- and
// hash-heavy integer codes that update their data structures in place
// (frequent input overwrites → shorter idempotent paths, higher register
// pressure on the 16-register integer file).
func specInt() []Workload {
	return []Workload{
		{
			Name: "perlbench", Suite: SpecInt, Args: []uint64{900}, MemWords: 16384,
			// String hashing and hash-table updates over synthetic text.
			Source: `
global int text[256];
global int table[128];
global int probes = 0;

func fill(int n) void {
    int s = 12345;
    for (int i = 0; i < n; i = i + 1) {
        s = s * 1103515245 + 12345;
        int c = s >> 16;
        if (c < 0) { c = -c; }
        text[i % 256] = c % 96 + 32;
    }
}

func hash(int from, int len) int {
    int h = 5381;
    for (int i = 0; i < len; i = i + 1) {
        h = h * 33 + text[(from + i) % 256];
    }
    if (h < 0) { h = -h; }
    return h;
}

func insert(int h) int {
    int slot = h % 128;
    int tries = 0;
    while (table[slot] != 0 && table[slot] != h && tries < 128) {
        slot = (slot + 1) % 128;
        tries = tries + 1;
        probes = probes + 1;
    }
    if (table[slot] == 0) { table[slot] = h; return 1; }
    return 0;
}

func main(int n) int {
    fill(256);
    int fresh = 0;
    for (int i = 0; i < n; i = i + 1) {
        int h = hash(i % 200, 5 + i % 11);
        fresh = fresh + insert(h);
    }
    return fresh * 10000 + probes % 10000;
}
`,
		},
		{
			Name: "bzip2", Suite: SpecInt, Args: []uint64{6}, MemWords: 16384,
			// Run-length encoding + move-to-front over a synthetic block.
			Source: `
global int block[512];
global int mtf[64];
global int out[1024];

func genblock(int seed) void {
    int s = seed;
    int i = 0;
    while (i < 512) {
        s = s * 1103515245 + 12345;
        int v = (s >> 13) % 64;
        if (v < 0) { v = -v; }
        int run = (s >> 7) % 6;
        if (run < 0) { run = -run; }
        run = run + 1;
        for (int k = 0; k < run; k = k + 1) {
            if (i < 512) { block[i] = v; i = i + 1; }
        }
    }
}

func mtfinit() void {
    for (int i = 0; i < 64; i = i + 1) { mtf[i] = i; }
}

func mtfenc(int v) int {
    int pos = 0;
    while (mtf[pos] != v) { pos = pos + 1; }
    for (int j = pos; j > 0; j = j - 1) { mtf[j] = mtf[j - 1]; }
    mtf[0] = v;
    return pos;
}

func main(int rounds) int {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        genblock(r * 7 + 1);
        mtfinit();
        int o = 0;
        int i = 0;
        while (i < 512) {
            int v = block[i];
            int run = 0;
            while (i < 512 && block[i] == v) { run = run + 1; i = i + 1; }
            out[o % 1024] = mtfenc(v);
            out[(o + 1) % 1024] = run;
            o = o + 2;
        }
        check = check + o;
        for (int k = 0; k < o && k < 1024; k = k + 1) {
            check = check + out[k] * (k + 1);
        }
    }
    return check;
}
`,
		},
		{
			Name: "gcc", Suite: SpecInt, Args: []uint64{400}, MemWords: 16384,
			// A stack-based evaluator over a synthetic RPN token stream —
			// compiler-style dispatch-heavy control flow.
			Source: `
global int toks[512];
global int stack[64];

func gen(int seed, int n) void {
    int s = seed;
    int depth = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s * 48271 % 2147483647;
        int r = s % 5;
        if (depth < 2 || r == 0) {
            toks[i] = 100 + s % 50;   // literal
            depth = depth + 1;
        } else {
            toks[i] = s % 4;          // op: + - * min
            depth = depth - 1;
        }
    }
    // Flush remaining depth with adds.
    int i = n;
    while (depth > 1 && i < 512) {
        toks[i] = 0;
        depth = depth - 1;
        i = i + 1;
    }
    toks[i] = -1;
}

func eval() int {
    int sp = 0;
    int i = 0;
    while (toks[i] != -1) {
        int t = toks[i];
        if (t >= 100) {
            stack[sp] = t - 100;
            sp = sp + 1;
        } else {
            int b = stack[sp - 1];
            int a = stack[sp - 2];
            sp = sp - 2;
            int v = 0;
            if (t == 0) { v = a + b; }
            else if (t == 1) { v = a - b; }
            else if (t == 2) { v = a * b % 65536; }
            else {
                if (a < b) { v = a; } else { v = b; }
            }
            stack[sp] = v;
            sp = sp + 1;
        }
        i = i + 1;
    }
    return stack[0];
}

func main(int rounds) int {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        gen(r * 31 + 7, 200 + r % 200);
        check = (check + eval()) % 1000000007;
    }
    return check;
}
`,
		},
		{
			Name: "mcf", Suite: SpecInt, Args: []uint64{40}, MemWords: 32768,
			// Bellman–Ford relaxation on a synthetic sparse graph:
			// repeated in-place distance updates (classic semantic
			// clobbers).
			Source: `
global int head[64];
global int nextE[512];
global int dest[512];
global int weight[512];
global int dist[64];

func build(int seed) void {
    for (int i = 0; i < 64; i = i + 1) { head[i] = -1; }
    int s = seed;
    for (int e = 0; e < 512; e = e + 1) {
        s = s * 48271 % 2147483647;
        int u = s % 64;
        s = s * 48271 % 2147483647;
        int v = s % 64;
        s = s * 48271 % 2147483647;
        dest[e] = v;
        weight[e] = s % 100 + 1;
        nextE[e] = head[u];
        head[u] = e;
    }
}

func relax() int {
    for (int i = 0; i < 64; i = i + 1) { dist[i] = 1000000; }
    dist[0] = 0;
    int changed = 1;
    int rounds = 0;
    while (changed == 1 && rounds < 64) {
        changed = 0;
        for (int u = 0; u < 64; u = u + 1) {
            if (dist[u] < 1000000) {
                int e = head[u];
                while (e != -1) {
                    int nd = dist[u] + weight[e];
                    if (nd < dist[dest[e]]) {
                        dist[dest[e]] = nd;
                        changed = 1;
                    }
                    e = nextE[e];
                }
            }
        }
        rounds = rounds + 1;
    }
    int sum = 0;
    for (int i = 0; i < 64; i = i + 1) {
        if (dist[i] < 1000000) { sum = sum + dist[i]; }
    }
    return sum;
}

func main(int rounds) int {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        build(r * 1217 + 3);
        check = (check + relax()) % 1000000007;
    }
    return check;
}
`,
		},
		{
			Name: "gobmk", Suite: SpecInt, Args: []uint64{60}, MemWords: 16384,
			// Branchy board-pattern scoring: dense conditionals and
			// in-place board mutation (the paper's predication-sensitive
			// outlier).
			Source: `
global int board[81];

func setup(int seed) void {
    int s = seed;
    for (int i = 0; i < 81; i = i + 1) {
        s = s * 1103515245 + 12345;
        int v = (s >> 20) % 3;
        if (v < 0) { v = -v; }
        board[i] = v;
    }
}

func liberties(int pos) int {
    int libs = 0;
    int r = pos / 9;
    int c = pos % 9;
    if (r > 0 && board[pos - 9] == 0) { libs = libs + 1; }
    if (r < 8 && board[pos + 9] == 0) { libs = libs + 1; }
    if (c > 0 && board[pos - 1] == 0) { libs = libs + 1; }
    if (c < 8 && board[pos + 1] == 0) { libs = libs + 1; }
    return libs;
}

func score(int color) int {
    int sc = 0;
    for (int p = 0; p < 81; p = p + 1) {
        if (board[p] == color) {
            int l = liberties(p);
            if (l == 0) { sc = sc - 10; }
            else if (l == 1) { sc = sc - 3; }
            else if (l >= 3) { sc = sc + 2; }
            else { sc = sc + 1; }
        }
    }
    return sc;
}

func play(int moves) int {
    int captured = 0;
    int s = moves * 2654435761;
    for (int mv = 0; mv < moves; mv = mv + 1) {
        s = s * 48271 % 2147483647;
        int p = s % 81;
        if (p < 0) { p = -p; }
        if (board[p] == 0) {
            board[p] = mv % 2 + 1;
            if (liberties(p) == 0) {
                board[p] = 0;
                captured = captured + 1;
            }
        }
    }
    return captured;
}

func main(int rounds) int {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        setup(r * 97 + 5);
        int cap = play(60);
        check = check + score(1) - score(2) + cap * 7;
    }
    return check;
}
`,
		},
		{
			Name: "hmmer", Suite: SpecInt, Args: []uint64{30}, MemWords: 32768,
			// Viterbi-style integer dynamic programming: streaming row
			// updates with few input overwrites (the paper's aliasing
			// outlier with long ideal paths).
			Source: `
global int scoreM[128];
global int scoreI[128];
global int prevM[128];
global int prevI[128];
global int emit[256];

func geninput(int seed) void {
    int s = seed;
    for (int i = 0; i < 256; i = i + 1) {
        s = s * 48271 % 2147483647;
        emit[i] = s % 16 - 8;
    }
}

func viterbi(int cols) int {
    for (int j = 0; j < 128; j = j + 1) { prevM[j] = -100000; prevI[j] = -100000; }
    prevM[0] = 0;
    for (int t = 1; t < cols; t = t + 1) {
        for (int j = 1; j < 128; j = j + 1) {
            int m = prevM[j - 1] + emit[(t * 7 + j) % 256];
            int i = prevI[j - 1] + emit[(t * 3 + j) % 256] - 2;
            int best = m;
            if (i > best) { best = i; }
            scoreM[j] = best;
            int keep = prevM[j] - 3;
            int ext = prevI[j] - 1;
            if (keep > ext) { scoreI[j] = keep; } else { scoreI[j] = ext; }
        }
        for (int j = 0; j < 128; j = j + 1) {
            prevM[j] = scoreM[j];
            prevI[j] = scoreI[j];
        }
    }
    int best = -100000;
    for (int j = 0; j < 128; j = j + 1) {
        if (prevM[j] > best) { best = prevM[j]; }
    }
    return best;
}

func main(int rounds) int {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        geninput(r * 13 + 1);
        check = check + viterbi(24 + r % 8);
    }
    return check;
}
`,
		},
		{
			Name: "sjeng", Suite: SpecInt, Args: []uint64{7}, MemWords: 65536,
			// Recursive negamax over a synthetic game tree: deep call
			// chains and per-node branching.
			Source: `
global int nodes = 0;

func evalleaf(int state) int {
    int v = state * 2654435761;
    v = v ^ (v >> 11);
    return v % 200 - 100;
}

func negamax(int state, int depth) int {
    nodes = nodes + 1;
    if (depth == 0) { return evalleaf(state); }
    int best = -1000000;
    int s = state;
    for (int mv = 0; mv < 4; mv = mv + 1) {
        s = s * 48271 % 2147483647;
        if (s % 3 == 0 && mv > 0) { continue; }  // pruned move
        int child = s ^ (depth * 7919);
        int v = -negamax(child, depth - 1);
        if (v > best) { best = v; }
        if (best > 80) { break; }                // beta cutoff
    }
    return best;
}

func main(int depth) int {
    int v = negamax(12345, depth);
    return v * 100000 + nodes % 100000;
}
`,
		},
		{
			Name: "astar", Suite: SpecInt, Args: []uint64{12}, MemWords: 32768,
			// Grid shortest-path search with an open list updated in
			// place.
			Source: `
global int grid[256];
global int dist[256];
global int open[256];

func genmaze(int seed) void {
    int s = seed;
    for (int i = 0; i < 256; i = i + 1) {
        s = s * 1103515245 + 12345;
        int v = (s >> 18) % 4;
        if (v < 0) { v = -v; }
        if (v == 0) { grid[i] = 9999; } else { grid[i] = v; }
    }
    grid[0] = 1;
    grid[255] = 1;
}

func search() int {
    for (int i = 0; i < 256; i = i + 1) { dist[i] = 1000000; open[i] = 0; }
    dist[0] = 0;
    open[0] = 1;
    int iter = 0;
    while (iter < 1024) {
        // Pick the open cell with the smallest distance.
        int best = -1;
        int bestd = 1000000;
        for (int i = 0; i < 256; i = i + 1) {
            if (open[i] == 1 && dist[i] < bestd) { best = i; bestd = dist[i]; }
        }
        if (best < 0) { break; }
        open[best] = 0;
        if (best == 255) { return dist[255]; }
        int r = best / 16;
        int c = best % 16;
        for (int d = 0; d < 4; d = d + 1) {
            int nr = r; int nc = c;
            if (d == 0) { nr = r - 1; }
            else if (d == 1) { nr = r + 1; }
            else if (d == 2) { nc = c - 1; }
            else { nc = c + 1; }
            if (nr >= 0 && nr < 16 && nc >= 0 && nc < 16) {
                int np = nr * 16 + nc;
                if (grid[np] < 9999) {
                    int nd = dist[best] + grid[np];
                    if (nd < dist[np]) { dist[np] = nd; open[np] = 1; }
                }
            }
        }
        iter = iter + 1;
    }
    return dist[255];
}

func main(int rounds) int {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        genmaze(r * 331 + 11);
        check = (check + search()) % 1000000007;
    }
    return check;
}
`,
		},
	}
}
