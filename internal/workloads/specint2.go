package workloads

// specInt2 returns the second half of the SPEC INT-like kernels.
func specInt2() []Workload {
	return []Workload{
		{
			Name: "libquantum", Suite: SpecInt, Args: []uint64{60}, MemWords: 32768,
			// Quantum register gate simulation: bit-twiddling over a
			// state-amplitude table, updated in place per gate.
			Source: `
global int state[256];

func initreg(int seed) void {
    int s = seed;
    for (int i = 0; i < 256; i = i + 1) {
        s = s * 48271 % 2147483647;
        state[i] = s % 1024;
    }
}

func cnot(int control, int target) void {
    int cm = 1 << control;
    int tm = 1 << target;
    for (int i = 0; i < 256; i = i + 1) {
        if ((i & cm) != 0 && (i & tm) == 0) {
            int j = i | tm;
            int tmp = state[i];
            state[i] = state[j];
            state[j] = tmp;
        }
    }
}

func hadamardish(int target) void {
    int tm = 1 << target;
    for (int i = 0; i < 256; i = i + 1) {
        if ((i & tm) == 0) {
            int j = i | tm;
            int a = state[i];
            int b = state[j];
            state[i] = (a + b) / 2;
            state[j] = (a - b) / 2;
        }
    }
}

func main(int gates) int {
    initreg(17);
    int s = 5;
    for (int g = 0; g < gates; g = g + 1) {
        s = s * 48271 % 2147483647;
        int t = s % 8;
        if (s % 3 == 0) {
            hadamardish(t);
        } else {
            cnot(t, (t + 1 + s % 7) % 8);
        }
    }
    int check = 0;
    for (int i = 0; i < 256; i = i + 1) {
        check = (check * 31 + state[i]) % 1000000007;
    }
    return check;
}
`,
		},
		{
			Name: "h264ref", Suite: SpecInt, Args: []uint64{50}, MemWords: 65536,
			// Motion estimation: sum-of-absolute-differences search over a
			// reference frame — streaming reads, one best-match write.
			Source: `
global int frame[1024];
global int block[16];

func genframe(int seed) void {
    int s = seed;
    for (int i = 0; i < 1024; i = i + 1) {
        s = s * 1103515245 + 12345;
        int v = (s >> 16) % 256;
        if (v < 0) { v = -v; }
        frame[i] = v;
    }
}

func sad(int bx, int by) int {
    int total = 0;
    for (int r = 0; r < 4; r = r + 1) {
        for (int c = 0; c < 4; c = c + 1) {
            int d = block[r * 4 + c] - frame[((by + r) % 32) * 32 + (bx + c) % 32];
            if (d < 0) { d = -d; }
            total = total + d;
        }
    }
    return total;
}

func search() int {
    int best = 1000000;
    int bestpos = 0;
    for (int y = 0; y < 28; y = y + 2) {
        for (int x = 0; x < 28; x = x + 2) {
            int s = sad(x, y);
            if (s < best) { best = s; bestpos = y * 32 + x; }
        }
    }
    return bestpos * 1000000 + best;
}

func main(int blocks) int {
    genframe(3);
    int check = 0;
    int s = 7;
    for (int b = 0; b < blocks; b = b + 1) {
        for (int i = 0; i < 16; i = i + 1) {
            s = s * 48271 % 2147483647;
            block[i] = s % 256;
        }
        check = (check * 131 + search()) % 1000000007;
    }
    return check;
}
`,
		},
		{
			Name: "omnetpp", Suite: SpecInt, Args: []uint64{900}, MemWords: 32768,
			// Discrete-event simulation: a binary-heap event queue with
			// constant insert/pop churn (in-place heap updates).
			Source: `
global int heapT[256];
global int heapK[256];
global int size = 0;
global int stations[16];

func push(int t, int kind) void {
    int i = size;
    heapT[i] = t;
    heapK[i] = kind;
    size = size + 1;
    while (i > 0 && heapT[(i - 1) / 2] > heapT[i]) {
        int p = (i - 1) / 2;
        int tt = heapT[p]; heapT[p] = heapT[i]; heapT[i] = tt;
        int kk = heapK[p]; heapK[p] = heapK[i]; heapK[i] = kk;
        i = p;
    }
}

func pop() int {
    int top = heapT[0] * 100 + heapK[0];
    size = size - 1;
    heapT[0] = heapT[size];
    heapK[0] = heapK[size];
    int i = 0;
    while (1) {
        int l = 2 * i + 1;
        int r = 2 * i + 2;
        int m = i;
        if (l < size && heapT[l] < heapT[m]) { m = l; }
        if (r < size && heapT[r] < heapT[m]) { m = r; }
        if (m == i) { break; }
        int tt = heapT[m]; heapT[m] = heapT[i]; heapT[i] = tt;
        int kk = heapK[m]; heapK[m] = heapK[i]; heapK[i] = kk;
        i = m;
    }
    return top;
}

func main(int events) int {
    int s = 13;
    int now = 0;
    int check = 0;
    push(1, 0);
    for (int e = 0; e < events; e = e + 1) {
        if (size == 0) { push(now + 1, e % 16); }
        int ev = pop();
        now = ev / 100;
        int k = ev % 100;
        stations[k % 16] = stations[k % 16] + 1;
        s = s * 48271 % 2147483647;
        if (size < 200) {
            push(now + s % 50 + 1, s % 16);
            if (s % 4 == 0 && size < 200) {
                push(now + s % 20 + 1, (s / 16) % 16);
            }
        }
        check = (check + now) % 1000000007;
    }
    return check;
}
`,
		},
		{
			Name: "xalancbmk", Suite: SpecInt, Args: []uint64{120}, MemWords: 65536,
			// Tree transformation: build a random n-ary document tree
			// (array-encoded), then repeatedly match-and-rewrite patterns.
			Source: `
global int tag[512];
global int firstChild[512];
global int nextSib[512];
global int nodes = 0;

func build(int parent, int depth, int seed) int {
    if (nodes >= 500) { return seed; }
    int me = nodes;
    nodes = nodes + 1;
    int s = seed * 48271 % 2147483647;
    tag[me] = s % 8;
    firstChild[me] = -1;
    nextSib[me] = -1;
    if (parent >= 0) {
        nextSib[me] = firstChild[parent];
        firstChild[parent] = me;
    }
    if (depth > 0) {
        int kids = s % 4;
        for (int k = 0; k < kids; k = k + 1) {
            s = build(me, depth - 1, s + k + 1);
        }
    }
    return s;
}

// rewrite: a node tagged 3 whose first child is tagged 5 becomes tag 7.
func rewrite() int {
    int hits = 0;
    for (int n = 0; n < nodes; n = n + 1) {
        if (tag[n] == 3) {
            int c = firstChild[n];
            if (c >= 0 && tag[c] == 5) {
                tag[n] = 7;
                hits = hits + 1;
            }
        }
        if (tag[n] == 7) {
            // renumber children cyclically
            int c = firstChild[n];
            while (c >= 0) {
                tag[c] = (tag[c] + 1) % 8;
                c = nextSib[c];
            }
        }
    }
    return hits;
}

func main(int passes) int {
    nodes = 0;
    build(-1, 6, 911);
    int check = nodes;
    for (int p = 0; p < passes; p = p + 1) {
        check = (check * 31 + rewrite()) % 1000000007;
    }
    for (int n = 0; n < nodes; n = n + 1) {
        check = (check * 7 + tag[n]) % 1000000007;
    }
    return check;
}
`,
		},
	}
}
