// Package isa defines the target machine: an ARM-flavoured load–store ISA
// with 16 integer registers and 32 floating-point registers (the paper's
// ARMv7 register-file split, which drives its SPEC INT vs SPEC FP overhead
// trend), word-addressed memory, and a handful of pseudo-operations used
// by the recovery transforms of §6.3 (region marks, DMR checks, TMR
// majority votes).
package isa

import "fmt"

// Reg names a physical register. Integer registers are R0..R15; floating
// point registers are F0..F31 (encoded as 16+i).
type Reg uint8

// Integer register conventions.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11 // integer scratch (spill temporaries)
	R12 // integer scratch
	SP  // r13: stack pointer
	LR  // r14: link register
	RP  // r15: restart pointer (region entry, §6.3)
)

// F returns the i'th floating point register.
func F(i int) Reg { return Reg(16 + i) }

// NumIntRegs and NumFloatRegs give the architectural register counts.
// NumRegs is the size of the unified register file: the Reg encoding is
// already flat (r0..r15 at 0..15, f0..f31 at 16..47), so a single
// NumRegs-entry bank indexed directly by Reg holds both files — the
// simulator's hot loop relies on this to avoid any int/float dispatch.
const (
	NumIntRegs   = 16
	NumFloatRegs = 32
	NumRegs      = NumIntRegs + NumFloatRegs
)

// IsFloat reports whether r is a floating point register.
func (r Reg) IsFloat() bool { return r >= 16 }

func (r Reg) String() string {
	if r.IsFloat() {
		return fmt.Sprintf("f%d", int(r-16))
	}
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case RP:
		return "rp"
	}
	return fmt.Sprintf("r%d", int(r))
}

// Op is a machine operation.
type Op uint8

const (
	// NOP does nothing (issue filler in tests).
	NOP Op = iota

	// MOVI rd, #imm: materialize an integer constant.
	MOVI
	// FMOVI fd, #fimm: materialize a float constant.
	FMOVI
	// MOV rd, rs: integer register move.
	MOV
	// FMOV fd, fs: float register move.
	FMOV

	// Integer ALU: rd = rs1 op rs2.
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	ORR
	EOR
	LSL
	ASR
	// ADDI rd, rs1, #imm (also the address-formation op).
	ADDI
	// NEG rd, rs1; MVN rd, rs1 (bitwise not).
	NEG
	MVN

	// Integer compare-and-set: rd = (rs1 op rs2) ? 1 : 0.
	SEQ
	SNE
	SLT
	SLE
	SGT
	SGE

	// Float ALU: fd = fs1 op fs2 (FNEG unary).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG

	// Float compare-and-set into an integer register.
	FSEQ
	FSNE
	FSLT
	FSLE
	FSGT
	FSGE

	// Conversions.
	ITOF // fd = float(rs1)
	FTOI // rd = int(fs1)

	// LDR rd, [rs1, #imm]; STR rs2, [rs1, #imm]. FLDR/FSTR for floats.
	LDR
	STR
	FLDR
	FSTR

	// Control flow. Imm is the absolute instruction index after linking.
	B
	CBZ  // branch if rs1 == 0
	CBNZ // branch if rs1 != 0
	CALL // lr = pc+1; jump
	RET  // jump to lr
	HALT // stop the machine (end of the startup stub)

	// MARK opens a new idempotent region: rp = pc, and buffered stores
	// commit (§2.3: stores are released once control flow is verified at
	// the boundary). Costs one issue slot, like the paper's "mov rp".
	MARK

	// Fault-detection pseudo-ops (§6.3). The simulator executes them
	// against its shadow state: CHECK verifies rd's shadow copy matches
	// (DMR), MAJ majority-votes rd across the two shadow copies (TMR).
	// Each costs one issue slot, matching the paper's single-cycle
	// assumption for majority voting.
	CHECK
	MAJ
)

var opNames = map[Op]string{
	NOP: "nop", MOVI: "movi", FMOVI: "fmovi", MOV: "mov", FMOV: "fmov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", ORR: "orr", EOR: "eor", LSL: "lsl", ASR: "asr",
	ADDI: "addi", NEG: "neg", MVN: "mvn",
	SEQ: "seq", SNE: "sne", SLT: "slt", SLE: "sle", SGT: "sgt", SGE: "sge",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FSEQ: "fseq", FSNE: "fsne", FSLT: "fslt", FSLE: "fsle", FSGT: "fsgt", FSGE: "fsge",
	ITOF: "itof", FTOI: "ftoi",
	LDR: "ldr", STR: "str", FLDR: "fldr", FSTR: "fstr",
	B: "b", CBZ: "cbz", CBNZ: "cbnz", CALL: "call", RET: "ret", HALT: "halt",
	MARK: "mark", CHECK: "check", MAJ: "maj",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Instr is one machine instruction. Rd is the destination; Rs1/Rs2 the
// sources; Imm carries immediates, load/store offsets and branch targets;
// FImm carries FMOVI constants; Sym is debug info (call target name).
type Instr struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Imm  int64
	FImm float64
	Sym  string
	// Shadow marks redundant copies inserted by the DMR/TMR recovery
	// transforms: 0 executes architecturally, 1 and 2 execute against the
	// simulator's shadow register banks (they occupy pipeline resources
	// but do not change architectural state).
	Shadow uint8
	// Meta marks instrumentation inserted by the recovery transforms
	// (checks, votes, log writes). The fault injector never targets Meta
	// instructions: the paper's fault model corrupts the protected
	// program's execution, and the detection/logging machinery is assumed
	// protected (as in SWIFT-style schemes).
	Meta bool
}

// IsMem reports whether the instruction accesses memory.
func (i Instr) IsMem() bool {
	switch i.Op {
	case LDR, STR, FLDR, FSTR:
		return true
	}
	return false
}

// IsBranch reports whether the instruction can redirect control flow.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case B, CBZ, CBNZ, CALL, RET:
		return true
	}
	return false
}

// String renders the instruction in assembly syntax.
func (i Instr) String() string {
	switch i.Op {
	case NOP, RET, HALT, MARK:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi %s, #%d", i.Rd, i.Imm)
	case FMOVI:
		return fmt.Sprintf("fmovi %s, #%g", i.Rd, i.FImm)
	case MOV, FMOV, NEG, MVN, ITOF, FTOI, FNEG:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case ADDI:
		return fmt.Sprintf("addi %s, %s, #%d", i.Rd, i.Rs1, i.Imm)
	case LDR, FLDR:
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case STR, FSTR:
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rs2, i.Rs1, i.Imm)
	case B:
		return fmt.Sprintf("b %d", i.Imm)
	case CBZ, CBNZ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case CALL:
		return fmt.Sprintf("call %d <%s>", i.Imm, i.Sym)
	case CHECK:
		return fmt.Sprintf("check %s", i.Rs1)
	case MAJ:
		return fmt.Sprintf("maj %s", i.Rd)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Latency returns the result latency in cycles of the instruction under
// the simulator's pipeline model (values chosen to resemble a small
// in-order ARM core).
func (i Instr) Latency() int {
	switch i.Op {
	case MUL:
		return 3
	case DIV, REM:
		return 12
	case FADD, FSUB, FNEG, ITOF, FTOI, FSEQ, FSNE, FSLT, FSLE, FSGT, FSGE:
		return 3
	case FMUL:
		return 4
	case FDIV:
		return 15
	case LDR, FLDR:
		return 2
	default:
		return 1
	}
}
