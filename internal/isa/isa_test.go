package isa

import (
	"strings"
	"testing"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		R0: "r0", R10: "r10", SP: "sp", LR: "lr", RP: "rp",
		F(0): "f0", F(31): "f31",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if !F(3).IsFloat() || SP.IsFloat() {
		t.Fatal("IsFloat wrong")
	}
}

func TestInstrClassification(t *testing.T) {
	if !(Instr{Op: LDR}).IsMem() || !(Instr{Op: FSTR}).IsMem() {
		t.Fatal("memory ops misclassified")
	}
	if (Instr{Op: ADD}).IsMem() {
		t.Fatal("ADD is not a memory op")
	}
	for _, op := range []Op{B, CBZ, CBNZ, CALL, RET} {
		if !(Instr{Op: op}).IsBranch() {
			t.Fatalf("%v should be a branch", op)
		}
	}
	if (Instr{Op: MARK}).IsBranch() {
		t.Fatal("MARK is not a branch")
	}
}

func TestLatencies(t *testing.T) {
	if (Instr{Op: ADD}).Latency() != 1 {
		t.Fatal("ALU latency")
	}
	if (Instr{Op: DIV}).Latency() <= (Instr{Op: MUL}).Latency() {
		t.Fatal("DIV should be slower than MUL")
	}
	if (Instr{Op: LDR}).Latency() < 2 {
		t.Fatal("loads have latency ≥ 2")
	}
	if (Instr{Op: FDIV}).Latency() <= (Instr{Op: FMUL}).Latency() {
		t.Fatal("FDIV should be slower than FMUL")
	}
}

func TestAssemblyStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MOVI, Rd: R1, Imm: 42}, "movi r1, #42"},
		{Instr{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}, "add r1, r2, r3"},
		{Instr{Op: LDR, Rd: R1, Rs1: SP, Imm: 3}, "ldr r1, [sp, #3]"},
		{Instr{Op: STR, Rs1: SP, Rs2: LR, Imm: 0}, "str lr, [sp, #0]"},
		{Instr{Op: CBZ, Rs1: R4, Imm: 17}, "cbz r4, 17"},
		{Instr{Op: MARK}, "mark"},
		{Instr{Op: CHECK, Rs1: R0}, "check r0"},
		{Instr{Op: FMOVI, Rd: F(2), FImm: 1.5}, "fmovi f2, #1.5"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains((Instr{Op: CALL, Sym: "f", Imm: 9}).String(), "<f>") {
		t.Fatal("call string lacks symbol")
	}
}
