// Package multicut solves the cut-placement problem at the heart of the
// paper's region construction (§4.2.1).
//
// Finding an optimal region decomposition reduces to minimum vertex
// multicut, which is NP-complete for general directed graphs. Following
// the paper, each antidependence pair (a, b) is associated with a single
// candidate set Sᵢ of vertices (by Lemma 1: the vertices that dominate b
// but not a, each of which lies on every a→b path), and a minimum hitting
// set over {Sᵢ} is approximated greedily. The greedy choice has a
// logarithmic approximation ratio (Cormen et al.).
//
// The §4.3 heuristic for dynamic behaviour is layered on top: candidates
// at the outermost loop nesting depth are preferred, with ties broken by
// the number of not-yet-hit sets a candidate intersects.
package multicut

import (
	"errors"
	"fmt"
	"sort"
)

// ErrEmptySet reports a hitting-set instance containing an empty
// candidate set: no vertex choice can hit it, so the instance is
// unsolvable. Empty sets are reachable from user-written .idc input (an
// antidependence whose Lemma-1 candidate computation yields nothing), so
// solvers return this error instead of panicking; internal/core
// propagates it out of the compiler driver.
var ErrEmptySet = errors.New("multicut: empty candidate set is unhittable")

// ErrNoCover reports that no remaining candidate covers an unhit set — a
// defensive condition that cannot occur when every set is non-empty, kept
// as an error rather than a crash.
var ErrNoCover = errors.New("multicut: no candidate covers a remaining set")

// Problem is a hitting set instance. Node identity is an opaque int; the
// caller maps instructions to ints.
type Problem struct {
	// Sets lists the candidate sets; every set must be non-empty, and a
	// valid solution intersects each one.
	Sets [][]int
	// Depth gives each node's loop nesting depth (0 = outside loops).
	// Nil means all zero.
	Depth map[int]int
	// UseLoopHeuristic enables the §4.3 outermost-depth-first choice.
	// When false, the plain greedy (most sets covered first) is used —
	// kept switchable for the ablation benchmark.
	UseLoopHeuristic bool
	// Balanced enables the paper's suggested future-work heuristic ("a
	// better heuristic most likely weighs both loop nesting depth and
	// intersecting set information more evenly"): candidates score
	// coverage discounted by 2^depth (a static estimate of execution
	// frequency) instead of depth-lexicographic choice. Overrides
	// UseLoopHeuristic.
	Balanced bool
}

// Solve returns an approximate minimum hitting set, deterministically
// (ties beyond the documented criteria break on smaller node id). An
// instance containing an empty candidate set is unsolvable and yields
// ErrEmptySet.
func Solve(p Problem) ([]int, error) {
	remaining := make([]bool, len(p.Sets))
	left := 0
	for i, s := range p.Sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("%w (set %d of %d)", ErrEmptySet, i, len(p.Sets))
		}
		remaining[i] = true
		left++
	}
	// occurs: node -> indices of sets containing it.
	occurs := map[int][]int{}
	for i, s := range p.Sets {
		for _, n := range s {
			occurs[n] = append(occurs[n], i)
		}
	}
	nodes := make([]int, 0, len(occurs))
	for n := range occurs {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	depth := func(n int) int {
		if p.Depth == nil {
			return 0
		}
		return p.Depth[n]
	}

	var picked []int
	for left > 0 {
		best := -1
		bestDepth, bestCover := 0, -1
		for _, n := range nodes {
			cover := 0
			for _, si := range occurs[n] {
				if remaining[si] {
					cover++
				}
			}
			if cover == 0 {
				continue
			}
			d := depth(n)
			better := false
			switch {
			case best == -1:
				better = true
			case p.Balanced:
				// Coverage per unit of estimated dynamic frequency.
				score := float64(cover) / float64(int64(1)<<min(uint(d), 30))
				bestScore := float64(bestCover) / float64(int64(1)<<min(uint(bestDepth), 30))
				better = score > bestScore
			case p.UseLoopHeuristic:
				// Outermost depth first; then most coverage; then id.
				if d < bestDepth || (d == bestDepth && cover > bestCover) {
					better = true
				}
			default:
				better = cover > bestCover
			}
			if better {
				best, bestDepth, bestCover = n, d, cover
			}
		}
		if best == -1 {
			return nil, ErrNoCover
		}
		picked = append(picked, best)
		for _, si := range occurs[best] {
			if remaining[si] {
				remaining[si] = false
				left--
			}
		}
	}
	sort.Ints(picked)
	return picked, nil
}

// Exact returns a true minimum hitting set by exhaustive search over
// subset sizes. Exponential: for tests and tiny instances only. Like
// Solve, it yields ErrEmptySet on unsolvable instances.
func Exact(sets [][]int) ([]int, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	universe := map[int]bool{}
	for i, s := range sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("%w (set %d of %d)", ErrEmptySet, i, len(sets))
		}
		for _, n := range s {
			universe[n] = true
		}
	}
	nodes := make([]int, 0, len(universe))
	for n := range universe {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	hits := func(chosen []int) bool {
		for _, s := range sets {
			ok := false
			for _, n := range s {
				for _, c := range chosen {
					if n == c {
						ok = true
						break
					}
				}
				if ok {
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	var search func(start int, chosen []int, k int) []int
	search = func(start int, chosen []int, k int) []int {
		if len(chosen) == k {
			if hits(chosen) {
				out := make([]int, k)
				copy(out, chosen)
				return out
			}
			return nil
		}
		for i := start; i < len(nodes); i++ {
			if r := search(i+1, append(chosen, nodes[i]), k); r != nil {
				return r
			}
		}
		return nil
	}
	for k := 1; k <= len(nodes); k++ {
		if r := search(0, nil, k); r != nil {
			return r, nil
		}
	}
	// Unreachable for well-formed input: the full node set always hits.
	return nil, ErrNoCover
}

// Covers reports whether the chosen nodes hit every set — a checkable
// postcondition used by tests and the region verifier.
func Covers(sets [][]int, chosen []int) bool {
	in := map[int]bool{}
	for _, c := range chosen {
		in[c] = true
	}
	for _, s := range sets {
		ok := false
		for _, n := range s {
			if in[n] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
