package multicut

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// mustSolve fails the test on a Solve error; the happy-path tests use it.
func mustSolve(t *testing.T, p Problem) []int {
	t.Helper()
	got, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve(%v): %v", p.Sets, err)
	}
	return got
}

func TestSolveTrivial(t *testing.T) {
	got := mustSolve(t, Problem{Sets: [][]int{{1, 2}, {2, 3}}})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Solve = %v, want [2]", got)
	}
}

func TestSolveDisjoint(t *testing.T) {
	got := mustSolve(t, Problem{Sets: [][]int{{1}, {2}, {3}}})
	if len(got) != 3 {
		t.Fatalf("disjoint singletons need 3 picks, got %v", got)
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	if got := mustSolve(t, Problem{}); len(got) != 0 {
		t.Fatalf("no sets → no cuts, got %v", got)
	}
}

func TestSolveErrorsOnEmptySet(t *testing.T) {
	_, err := Solve(Problem{Sets: [][]int{{1}, {}}})
	if !errors.Is(err, ErrEmptySet) {
		t.Fatalf("Solve with empty set: err = %v, want ErrEmptySet", err)
	}
}

func TestExactErrorsOnEmptySet(t *testing.T) {
	_, err := Exact([][]int{{}})
	if !errors.Is(err, ErrEmptySet) {
		t.Fatalf("Exact with empty set: err = %v, want ErrEmptySet", err)
	}
}

func TestLoopHeuristicPrefersShallow(t *testing.T) {
	// Node 10 (depth 2) covers both sets; nodes 1 and 2 (depth 0) cover
	// one each. Plain greedy picks 10; the loop heuristic avoids the deep
	// node even at the cost of more cuts.
	sets := [][]int{{10, 1}, {10, 2}}
	depth := map[int]int{10: 2, 1: 0, 2: 0}

	plain := mustSolve(t, Problem{Sets: sets, Depth: depth})
	if len(plain) != 1 || plain[0] != 10 {
		t.Fatalf("plain greedy = %v, want [10]", plain)
	}
	heur := mustSolve(t, Problem{Sets: sets, Depth: depth, UseLoopHeuristic: true})
	if len(heur) != 2 {
		t.Fatalf("loop heuristic = %v, want the two depth-0 nodes", heur)
	}
	for _, n := range heur {
		if n == 10 {
			t.Fatalf("loop heuristic picked the deep node: %v", heur)
		}
	}
}

func TestExactSmall(t *testing.T) {
	sets := [][]int{{1, 2}, {2, 3}, {3, 4}}
	got, err := Exact(sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Exact = %v, want size 2 (e.g. {2,3})", got)
	}
	if !Covers(sets, got) {
		t.Fatalf("Exact returned a non-cover: %v", got)
	}
}

func TestCovers(t *testing.T) {
	sets := [][]int{{1, 2}, {3}}
	if !Covers(sets, []int{2, 3}) {
		t.Fatal("2,3 covers")
	}
	if Covers(sets, []int{1}) {
		t.Fatal("1 alone does not cover")
	}
}

// TestGreedyIsValidAndNearOptimal: on random instances the greedy result
// always covers, and is within the ln(m)+1 guarantee of the optimum.
func TestGreedyIsValidAndNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		nNodes := 3 + rng.Intn(6)
		nSets := 1 + rng.Intn(5)
		sets := make([][]int, nSets)
		for i := range sets {
			size := 1 + rng.Intn(3)
			seen := map[int]bool{}
			for len(sets[i]) < size {
				n := rng.Intn(nNodes)
				if !seen[n] {
					seen[n] = true
					sets[i] = append(sets[i], n)
				}
			}
		}
		greedy := mustSolve(t, Problem{Sets: sets})
		if !Covers(sets, greedy) {
			t.Fatalf("trial %d: greedy %v does not cover %v", trial, greedy, sets)
		}
		exact, err := Exact(sets)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Harmonic bound H(maxCover) ≤ ~2.5 for these sizes; assert a
		// loose factor of 3.
		if len(greedy) > 3*len(exact) {
			t.Fatalf("trial %d: greedy %d vs optimal %d", trial, len(greedy), len(exact))
		}
	}
}

// Property: Solve is deterministic.
func TestQuickDeterminism(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSets := 1 + rng.Intn(4)
		sets := make([][]int, nSets)
		for i := range sets {
			for j := 0; j <= rng.Intn(3); j++ {
				sets[i] = append(sets[i], rng.Intn(8))
			}
		}
		a, errA := Solve(Problem{Sets: sets})
		b, errB := Solve(Problem{Sets: sets})
		if (errA == nil) != (errB == nil) {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
