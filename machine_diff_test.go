// Differential pin of the simulator engine: every workload is executed
// under every recovery scheme (plus seeded fault injections on a small
// subset) and the resulting architectural state — statistics, register
// file, memory image, path histogram — is digested and compared against
// testdata/machine_digests.json, which was generated with the pre-
// predecode interpreter. Any semantic drift in the hot-loop rewrite
// (operand decode, store-buffer forwarding, fault scheduling, pipeline
// accounting) shows up here as a digest mismatch naming the exact
// (workload, scheme) cell that diverged.
//
// Regenerate with:  go test -run TestMachineStateDigests -update-digests .
// (only legitimate when a change intentionally alters simulator
// semantics; the whole point of the file is to make that loud.)
package idemproc

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"idemproc/internal/buildcache"
	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

var updateDigests = flag.Bool("update-digests", false, "rewrite testdata/machine_digests.json from the current engine")

const digestPath = "testdata/machine_digests.json"

// digest is the per-run state fingerprint: the exported machine.Snapshot
// (its JSON field names are pinned by the golden file, and the idemd
// service returns the same snapshots from /v1/simulate, so this test
// also pins the service's digest schema).
type digest = machine.Snapshot

func digestOf(m *machine.Machine, r0 uint64, err error) digest {
	return m.Snapshot(r0, err)
}

// schemeCase is one (binary, machine config) cell of the matrix.
type schemeCase struct {
	name  string
	idem  bool // compile the idempotent binary
	apply fault.Scheme
	doApp bool // run fault.Apply
	cfg   machine.Config
}

func schemeCases() []schemeCase {
	cache := machine.DefaultCache()
	return []schemeCase{
		{name: "plain", cfg: machine.Config{Cache: cache}},
		{name: "idem", idem: true, cfg: machine.Config{BufferStores: true, TrackPaths: true, Cache: cache}},
		{name: "dmr", doApp: true, apply: fault.SchemeDMR, cfg: machine.Config{Cache: cache}},
		{name: "tmr", doApp: true, apply: fault.SchemeTMR, cfg: machine.Config{Recovery: machine.RecoverTMR, Cache: cache}},
		{name: "cl", doApp: true, apply: fault.SchemeCheckpointLog, cfg: machine.Config{Recovery: machine.RecoverCheckpointLog, Cache: cache}},
		{name: "idem-rec", idem: true, doApp: true, apply: fault.SchemeIdempotence,
			cfg: machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence, Cache: cache}},
	}
}

// injectedWorkloads are the (small) workloads additionally digested with
// seeded fault injections armed, pinning the injection machinery itself.
var injectedWorkloads = []string{"mcf", "sjeng", "lbm"}

// injections is a fixed battery covering every fault model; steps and
// masks are deliberately mid-run primes so they land inside regions.
func injections() []fault.Injection {
	return []fault.Injection{
		{Model: fault.ModelRegisterBitFlip, Step: 101, Mask: 1 << 7},
		{Model: fault.ModelRegisterBurst, Step: 211, Mask: 0b111 << 12},
		{Model: fault.ModelMemoryWord, Step: 307, Addr: 5, Mask: 1 << 3},
		{Model: fault.ModelControlFlow, Step: 401},
		{Model: fault.ModelBoundary, Step: 149, Mask: 1 << 9},
		{Model: fault.ModelNested, Step: 173, Mask: 1 << 5, After: 1, NestedMask: 1 << 11},
	}
}

func buildFor(t testing.TB, cache *buildcache.Cache, w workloads.Workload, sc schemeCase) *codegen.Program {
	t.Helper()
	mo := codegen.ModuleOptions{Core: core.DefaultOptions(), Idempotent: sc.idem}
	p, _, err := cache.Compile(context.Background(), w, mo)
	if err != nil {
		t.Fatalf("%s/%s: compile: %v", w.Name, sc.name, err)
	}
	if sc.doApp {
		p = fault.Apply(p, sc.apply)
	}
	return p
}

// TestMachineStateDigests runs the full matrix and compares digests.
func TestMachineStateDigests(t *testing.T) {
	cache := buildcache.New()
	type cell struct {
		key string
		run func() digest
	}
	var cells []cell

	for _, w := range workloads.All() {
		for _, sc := range schemeCases() {
			w, sc := w, sc
			cells = append(cells, cell{
				key: w.Name + "/" + sc.name,
				run: func() digest {
					p := buildFor(t, cache, w, sc)
					m := machine.New(p, sc.cfg)
					r0, err := m.Run(w.Args...)
					return digestOf(m, r0, err)
				},
			})
		}
	}

	// Injected runs: idempotence recovery on the instrumented idempotent
	// binary, one digest per fault model, plus an unprotected plain run
	// for the memory model (SDC path).
	for _, name := range injectedWorkloads {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("injected workload %q missing", name)
		}
		for _, inj := range injections() {
			w, inj := w, inj
			cells = append(cells, cell{
				key: fmt.Sprintf("%s/inject-%s", w.Name, inj.Model),
				run: func() digest {
					sc := schemeCase{idem: true, doApp: true, apply: fault.SchemeIdempotence,
						cfg: machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence,
							Cache: machine.DefaultCache(), WatchdogRef: 1 << 20}}
					p := buildFor(t, cache, w, sc)
					m := machine.New(p, sc.cfg)
					fault.Arm(m, inj)
					r0, err := m.Run(w.Args...)
					return digestOf(m, r0, err)
				},
			})
		}
	}

	got := make(map[string]digest, len(cells))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, c := range cells {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			d := c.run()
			mu.Lock()
			got[c.key] = d
			mu.Unlock()
		}()
	}
	wg.Wait()

	if *updateDigests {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), digestPath)
		return
	}

	blob, err := os.ReadFile(digestPath)
	if err != nil {
		t.Fatalf("read %s (generate with -update-digests): %v", digestPath, err)
	}
	var want map[string]digest
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse %s: %v", digestPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("digest count mismatch: golden has %d, run produced %d", len(want), len(got))
	}
	for key, wd := range want {
		gd, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from current run", key)
			continue
		}
		if gd != wd {
			t.Errorf("%s: state diverged\n  want %+v\n  got  %+v", key, wd, gd)
		}
	}
}
