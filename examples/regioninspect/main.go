// Regioninspect: explore the static region decomposition and the dynamic
// path behaviour of any workload in the suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func main() {
	name := flag.String("workload", "canneal", "workload to inspect")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q (try: mcf, lbm, canneal, ...)", *name)
	}

	p, st, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords,
		codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s (%s): %d machine instructions, %d region marks\n\n", w.Name, w.Suite, st.StaticInstrs, st.Marks)
	fmt.Printf("%-16s %8s %8s %6s %10s %9s %8s\n", "function", "instrs", "regions", "cuts", "avg size", "antideps", "unrolls")
	var names []string
	for fn := range st.Construction {
		names = append(names, fn)
	}
	sort.Strings(names)
	for _, fn := range names {
		res := st.Construction[fn]
		fmt.Printf("%-16s %8d %8d %6d %10.1f %9d %8d\n", "@"+fn,
			res.Stats.Instructions, res.Stats.RegionCount, res.Cuts,
			res.Stats.AvgRegionSize, res.Stats.AntidepsCut, res.Stats.LoopsUnrolled)
	}

	m := machine.New(p, machine.Config{BufferStores: true, TrackPaths: true})
	if _, err := m.Run(w.Args...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic: %d instructions, %d cycles (IPC %.2f), %d boundaries crossed\n",
		m.Stats.DynInstrs, m.Stats.Cycles, float64(m.Stats.DynInstrs)/float64(m.Stats.Cycles), m.Stats.Marks)
	fmt.Printf("average dynamic path length: %.1f instructions\n\n", m.Stats.AvgPathLen())

	lens, cdf := m.Stats.WeightedPathCDF()
	fmt.Println("path length CDF (execution-time weighted):")
	marks := []float64{0.25, 0.5, 0.75, 0.9, 0.99}
	mi := 0
	for i, l := range lens {
		for mi < len(marks) && cdf[i] >= marks[mi] {
			fmt.Printf("  %4.0f%% of time on paths ≤ %d instructions\n", marks[mi]*100, l)
			mi++
		}
	}
}
