// Interprocedural: demonstrate the pure-call extension. The paper's §3
// limit study shows large gains from letting idempotent regions cross
// function boundaries; this repository's first step in that direction
// lets regions span calls to provably memory-free functions (recovery
// simply re-executes the call with the enclosing region).
package main

import (
	"fmt"
	"log"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("swaptions")
	if !ok {
		log.Fatal("workload missing")
	}

	fmt.Println("swaptions: a Monte-Carlo kernel whose hot loop calls the pure helpers lcg/simulate")
	fmt.Println()

	pure := core.PureFunctions(w.Module())
	fmt.Print("memory-free functions found: ")
	for name := range pure {
		fmt.Printf("@%s ", name)
	}
	fmt.Println()

	measure := func(pureCalls bool) (*machine.Machine, *codegen.Program) {
		p, _, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords,
			codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions(), PureCalls: pureCalls})
		if err != nil {
			log.Fatal(err)
		}
		m := machine.New(p, machine.Config{BufferStores: true, TrackPaths: true, Cache: machine.DefaultCache()})
		if _, err := m.Run(w.Args...); err != nil {
			log.Fatal(err)
		}
		return m, p
	}

	intra, _ := measure(false)
	inter, ip := measure(true)
	fmt.Printf("\n%-34s %18s %14s\n", "", "intra-procedural", "pure-calls")
	fmt.Printf("%-34s %18.1f %14.1f\n", "avg dynamic path length (instrs)", intra.Stats.AvgPathLen(), inter.Stats.AvgPathLen())
	fmt.Printf("%-34s %18d %14d\n", "region boundaries crossed", intra.Stats.Marks, inter.Stats.Marks)
	fmt.Printf("%-34s %18d %14d\n", "cycles", intra.Stats.Cycles, inter.Stats.Cycles)

	// Recovery still works with regions spanning the calls.
	res, err := fault.Campaign(fault.Apply(ip, fault.SchemeIdempotence), fault.SchemeIdempotence, 20, w.Args...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault campaign over the pure-calls binary: %d/%d landed faults recovered to correct results\n",
		res.Correct, res.Landed)
}
