// Faultrecovery: compile a small program as an idempotent binary, inject
// transient faults during execution, and watch idempotence-based recovery
// (§6.3) restore correct results by re-executing regions — no
// checkpoints taken, ever.
package main

import (
	"fmt"
	"log"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/lang"
	"idemproc/internal/machine"
)

const program = `
global int ledger[64];

func credit(int account, int amount) void {
    ledger[account % 64] = ledger[account % 64] + amount;
}

func main(int n) int {
    int s = 42;
    for (int i = 0; i < n; i = i + 1) {
        s = s * 48271 % 2147483647;
        credit(s, s % 100 + 1);
    }
    int total = 0;
    for (int a = 0; a < 64; a = a + 1) {
        total = total + ledger[a];
    }
    return total;
}
`

func main() {
	mod, err := lang.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	// Idempotent compilation + DMR detection instrumentation.
	p, st, err := codegen.CompileModule(mod, "main", 8192, true, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	p = fault.Apply(p, fault.SchemeIdempotence)
	fmt.Printf("compiled idempotent binary: %d instructions, %d region boundaries\n\n", st.StaticInstrs, st.Marks)

	// Fault-free reference.
	ref := machine.New(p, machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence})
	want, err := ref.Run(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free run:   result=%d  (%d instructions)\n", want, ref.Stats.DynInstrs)

	// Injection campaign: corrupt a destination register every ~40k
	// dynamic instructions.
	m := machine.New(p, machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence})
	span := ref.Stats.DynInstrs
	n := 0
	for step := span / 20; step < span; step += span / 20 {
		m.InjectFault(step, uint(step)%60+1)
		n++
	}
	got, err := m.Run(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %2d faults:   result=%d  (%d instructions; %d detected, %d region re-executions)\n",
		n, got, m.Stats.DynInstrs, m.Stats.Detections, m.Stats.Recoveries)

	if got != want {
		log.Fatalf("RECOVERY FAILED: %d != %d", got, want)
	}
	fmt.Println("\nresults identical: every fault was recovered by re-executing the")
	fmt.Println("current idempotent region from the address in rp — no checkpoint state.")
}
