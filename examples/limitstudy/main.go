// Limitstudy: reproduce the paper's §3 limit study on a few workloads —
// how long could idempotent paths be with perfect runtime information,
// and how badly do artificial (compiler-introduced) clobber
// antidependences inhibit them?
package main

import (
	"fmt"
	"log"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/limit"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func main() {
	names := []string{"mcf", "lbm", "blackscholes"}
	fmt.Println("dynamic idempotent path lengths in the limit (instructions, higher = better):")
	fmt.Printf("%-14s %16s %16s %22s\n", "workload", "semantic", "semantic+calls", "semantic+artificial")
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			log.Fatalf("unknown workload %q", name)
		}
		// The limit study observes the CONVENTIONAL binary: the point is
		// to measure what a conventional compilation inhibits.
		p, _, err := codegen.CompileModule(w.Module(), "main", w.MemWords, false, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		tr := limit.NewTracker()
		m := machine.New(p, machine.Config{Tracer: tr})
		if _, err := m.Run(w.Args...); err != nil {
			log.Fatal(err)
		}
		r := tr.Results()
		fmt.Printf("%-14s %16.1f %16.1f %22.1f\n", w.Name,
			r[limit.Semantic].AvgPathLen, r[limit.SemanticCalls].AvgPathLen, r[limit.SemanticArtificial].AvgPathLen)
	}
	fmt.Println("\nthe gap between the last two columns is the opportunity the paper's")
	fmt.Println("compiler recovers: artificial clobbers (registers + spills) are compilation")
	fmt.Println("artifacts, removable by SSA + the §4.4 allocation constraint.")
}
