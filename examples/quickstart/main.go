// Quickstart: run the paper's running example (Figure 1's list_push)
// through the idempotent region construction and inspect the result —
// the antidependences found, the cut placed, and the region decomposition.
package main

import (
	"fmt"
	"log"

	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/lang"
	"idemproc/internal/ssa"
)

// listPush is Figure 1(a) in idc: push an element onto a bounded list.
// list[0] holds the size, list[1] the capacity, list[2..] the data. The
// increment of list[0] is the semantic clobber antidependence that forces
// a region boundary.
const listPush = `
global int the_list[18] = {0, 16};

func list_push(int* list, int e) void {
    int size = list[0];
    if (size >= list[1]) {
        return;
    }
    list[2 + size] = e;
    list[0] = size + 1;
}

func main(int n) int {
    for (int i = 0; i < n; i = i + 1) {
        list_push(the_list, i * 7);
    }
    return the_list[0];
}
`

func main() {
	mod, err := lang.Compile(listPush)
	if err != nil {
		log.Fatal(err)
	}
	f := mod.Func("list_push")

	// Show the IR the frontend produced.
	ssa.PromoteAllocas(f)
	ssa.Build(f)
	fmt.Println("=== list_push after SSA conversion (§4.1) ===")
	fmt.Println(ir.FuncString(f))

	// Run the §4 region construction.
	res, err := core.Construct(f, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== memory antidependences (the semantic clobbers of Fig. 1c) ===")
	for _, d := range res.Antideps {
		kind := "may-alias"
		if d.MustAliasPair {
			kind = "must-alias"
		}
		fmt.Printf("  %-28s --WAR-->  %-28s (%s)\n", d.Read.LongString(), d.Write.LongString(), kind)
	}

	fmt.Println("\n=== region decomposition (cuts from the §4.2.1 hitting set) ===")
	fmt.Println(core.DumpRegions(res))

	fmt.Printf("stats: %d antideps cut with %d multicut cut(s); %d regions, avg %.1f instructions\n",
		res.Stats.AntidepsCut, res.Stats.CutsFromMulticut, res.Stats.RegionCount, res.Stats.AvgRegionSize)

	// The decomposition is verified independently.
	if err := core.Check(res); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("core.Check: decomposition verified — no region contains an uncut clobber antidependence")
}
