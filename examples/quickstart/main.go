// Quickstart: run the paper's running example (Figure 1's list_push)
// through the idempotent region construction and inspect the result —
// the antidependences found, the cut placed, and the region decomposition.
// The second half runs the *same* analysis through idemd, the HTTP
// service, and checks the two reports are byte-identical.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/lang"
	"idemproc/internal/server"
	"idemproc/internal/ssa"
)

// listPush is Figure 1(a) in idc: push an element onto a bounded list.
// list[0] holds the size, list[1] the capacity, list[2..] the data. The
// increment of list[0] is the semantic clobber antidependence that forces
// a region boundary.
const listPush = `
global int the_list[18] = {0, 16};

func list_push(int* list, int e) void {
    int size = list[0];
    if (size >= list[1]) {
        return;
    }
    list[2 + size] = e;
    list[0] = size + 1;
}

func main(int n) int {
    for (int i = 0; i < n; i = i + 1) {
        list_push(the_list, i * 7);
    }
    return the_list[0];
}
`

func main() {
	mod, err := lang.Compile(listPush)
	if err != nil {
		log.Fatal(err)
	}
	f := mod.Func("list_push")

	// Show the IR the frontend produced.
	ssa.PromoteAllocas(f)
	ssa.Build(f)
	fmt.Println("=== list_push after SSA conversion (§4.1) ===")
	fmt.Println(ir.FuncString(f))

	// Run the §4 region construction.
	res, err := core.Construct(f, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== memory antidependences (the semantic clobbers of Fig. 1c) ===")
	for _, d := range res.Antideps {
		kind := "may-alias"
		if d.MustAliasPair {
			kind = "must-alias"
		}
		fmt.Printf("  %-28s --WAR-->  %-28s (%s)\n", d.Read.LongString(), d.Write.LongString(), kind)
	}

	fmt.Println("\n=== region decomposition (cuts from the §4.2.1 hitting set) ===")
	fmt.Println(core.DumpRegions(res))

	fmt.Printf("stats: %d antideps cut with %d multicut cut(s); %d regions, avg %.1f instructions\n",
		res.Stats.AntidepsCut, res.Stats.CutsFromMulticut, res.Stats.RegionCount, res.Stats.AvgRegionSize)

	// The decomposition is verified independently.
	if err := core.Check(res); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("core.Check: decomposition verified — no region contains an uncut clobber antidependence")

	serviceDemo()
}

// serviceDemo performs the same analysis through the idemd service and
// proves the HTTP path is just a transport: the /v1/compile response for
// listPush is byte-identical to the report the library produces.
func serviceDemo() {
	fmt.Println("\n=== the same analysis, as a service (idemd) ===")

	// An in-process server; `idemd -addr 127.0.0.1:7777` serves the same
	// handler as a daemon.
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqBody, err := json.Marshal(&server.CompileRequest{Source: listPush})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	httpReport, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /v1/compile: status %d err %v: %s", resp.StatusCode, err, httpReport)
	}

	// The library path to the identical report: wrap the source as a
	// workload, compile with the paper's defaults, render the report.
	wk, err := server.SourceWorkload(listPush, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}
	_, st, err := codegen.CompileModuleOpts(wk.Module(), "main", wk.MemWords, mo)
	if err != nil {
		log.Fatal(err)
	}
	libReport, err := json.Marshal(server.ReportForBuild(wk, mo, st))
	if err != nil {
		log.Fatal(err)
	}
	libReport = append(libReport, '\n')

	if !bytes.Equal(httpReport, libReport) {
		log.Fatalf("service and library reports differ:\n  http: %s\n  lib:  %s", httpReport, libReport)
	}
	var rep server.CompileReport
	if err := json.Unmarshal(httpReport, &rep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/compile -> workload %s: %d static instrs, %d checkpoint marks, %d functions\n",
		rep.Workload, rep.StaticInstrs, rep.Marks, len(rep.Functions))
	fmt.Println("service and library reports are byte-identical")
	fmt.Println("\nagainst a real daemon:")
	fmt.Println("  $ idemd -addr 127.0.0.1:7777 &")
	fmt.Println(`  $ curl -s -X POST 127.0.0.1:7777/v1/compile -d '{"source": "..."}'`)
}
