# Standard entry points. `make ci` is the full gate: build, vet, and the
# test suite under the race detector (the campaign engine is the main
# concurrent component — see docs/faultengine.md).

GO ?= go

.PHONY: all build vet test race race-fault bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime; race-fault covers the concurrent
# campaign engine quickly, race runs the whole tree.
race-fault:
	$(GO) test -race ./internal/fault/... ./internal/machine/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet race
