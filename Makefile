# Standard entry points. `make ci` is the full gate: build, format/vet
# checks, and the test suite under the race detector (the campaign
# engine and the experiment engine are the concurrent components — see
# docs/faultengine.md and docs/experiments.md).

GO ?= go
GOFMT ?= gofmt

.PHONY: all build fmt-check vet check lint test race race-fault bench bench-sim bench-serve bench-shard bench-quick serve-smoke chaos-smoke persist-smoke shard-smoke jobs-smoke verify-smoke ci

all: build

build:
	$(GO) build ./...

# fmt-check fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs go vet plus cmd/idemlint, the repo's own order-sensitivity
# checker: analysis passes that range over maps while appending to
# shared output (or building strings) produce run-to-run diffs that
# break the deterministic-digest contract. Findings are suppressed by a
# later sort or an explicit //idemlint:ordered annotation.
lint: vet
	$(GO) run ./cmd/idemlint

check: fmt-check lint

test: check
	$(GO) test ./...
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) persist-smoke
	$(MAKE) shard-smoke
	$(MAKE) jobs-smoke
	$(MAKE) verify-smoke

# serve-smoke is the end-to-end service gate: boot idemd on a free port,
# fire a seeded idemload burst twice (same seed must yield byte-identical
# response digests, with a warm compile cache), then again under a tiny
# -cache-bytes bound (evictions must happen), draining with SIGTERM both
# times. See scripts/serve_smoke.sh and docs/service.md.
serve-smoke: build
	./scripts/serve_smoke.sh

# chaos-smoke is the end-to-end resilience gate: the same seeded load,
# but routed through the internal/chaos fault proxy (latency, 500s,
# connection resets, truncated bodies) with retries + hedging enabled.
# Idempotent re-execution must absorb every injected fault: zero
# permanently failed requests, zero digest mismatches. See
# scripts/chaos_smoke.sh and docs/resilience.md.
chaos-smoke: build
	./scripts/chaos_smoke.sh

# persist-smoke is the end-to-end persistence gate: populate the
# -cache-dir artifact store under seeded load, SIGTERM, restart over the
# same store and replay — the daemon must compile nothing, serve every
# build from disk, and produce a byte-identical digest; then corrupt an
# artifact and prove the store self-heals. See scripts/persist_smoke.sh
# and docs/persistence.md.
persist-smoke: build
	./scripts/persist_smoke.sh

# shard-smoke is the end-to-end sharding gate: seeded baselines against
# one idemd, then the same campaigns through idemfront over a 3-replica
# fleet. The fleet must reproduce the baseline digests byte-for-byte,
# match the baseline's cache hit ratio on the summed replica counters,
# show hits on every replica (the ring partitioned the working set), and
# absorb a SIGKILLed replica mid-campaign with zero failures. See
# scripts/shard_smoke.sh and docs/sharding.md.
shard-smoke: build
	./scripts/shard_smoke.sh

# verify-smoke is the end-to-end translation-validation gate: boot
# `idemd -verify-mode full`, compile every built-in workload through
# /v1/compile (each response must report verified=true), drive the
# seeded mixed load, and assert via scraped metrics that checks ran and
# zero violations were found. See scripts/verify_smoke.sh and
# docs/verify.md.
verify-smoke: build
	./scripts/verify_smoke.sh

# jobs-smoke is the end-to-end async-job gate: run a job to completion
# and assert its reconstructed stream is byte-identical to /v1/batch,
# then SIGKILL the daemon mid-job and prove the journal resumes it on
# restart — same digest, zero recompiles, at least one unit served from
# the journal instead of re-executed. See scripts/jobs_smoke.sh and
# docs/jobs.md.
jobs-smoke: build
	./scripts/jobs_smoke.sh

# The race detector multiplies runtime; race-fault covers the concurrent
# components quickly (campaign engine, simulator, compile cache,
# experiment engine, idemd service core, resilience/chaos layers and the
# cmd-level signal paths), race runs the whole tree.
race-fault:
	$(GO) test -race ./internal/fault/... ./internal/machine/... \
		./internal/buildcache/... ./internal/experiments/... \
		./internal/server/... ./internal/resilience/... \
		./internal/chaos/... ./internal/shard/... ./internal/jobs/... \
		./cmd/idemd/... ./cmd/idemfront/... ./cmd/idemload/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-sim measures the raw simulator engine (the hot loop every figure
# driver funnels through) and writes the headline numbers to
# BENCH_sim.json: ns per simulated instruction, instructions per second,
# heap allocations per step (contract: ~0), and the warm end-to-end cost
# of the most simulation-heavy figure (Fig. 8).
BENCH_SIM_COUNT ?= 2
bench-sim: build
	@$(GO) test -run '^$$' -bench 'BenchmarkMachineStep$$|BenchmarkFig8PathCDF$$' \
		-benchtime $(BENCH_SIM_COUNT)x -benchmem . | tee BENCH_sim.txt
	@awk ' \
		/^BenchmarkMachineStep/ { for (i=1; i<=NF; i++) { \
			if ($$i == "ns/step") ns = $$(i-1); \
			if ($$i == "Minstr/sec") mi = $$(i-1); \
			if ($$i == "allocs/step") as = $$(i-1); } } \
		/^BenchmarkFig8PathCDF/ { for (i=1; i<=NF; i++) \
			if ($$i == "ns/op") fig8 = $$(i-1); } \
		END { printf "{\n  \"machine_step\": {\"ns_per_step\": %s, \"instrs_per_sec\": %.0f, \"allocs_per_step\": %s},\n  \"fig8_path_cdf\": {\"ns_per_op\": %s}\n}\n", ns, mi * 1e6, as, fig8 }' \
		BENCH_sim.txt > BENCH_sim.json
	@rm -f BENCH_sim.txt
	@echo "wrote BENCH_sim.json:"; cat BENCH_sim.json

# bench-serve measures the idemd service under the acceptance workload
# (2000 mixed requests at concurrency 32, run twice with one seed) and
# writes req/s and latency percentiles to BENCH_serve.json. The run
# doubles as a correctness gate: any non-200 response or cross-pass
# digest mismatch fails it.
BENCH_SERVE_REQUESTS ?= 2000
BENCH_SERVE_CONCURRENCY ?= 32
bench-serve: build
	BENCH_SERVE_REQUESTS=$(BENCH_SERVE_REQUESTS) \
	BENCH_SERVE_CONCURRENCY=$(BENCH_SERVE_CONCURRENCY) \
		./scripts/bench_serve.sh

# bench-shard runs the same acceptance workload through idemfront over a
# BENCH_SHARD_REPLICAS-wide idemd fleet (default 3) and writes
# BENCH_shard.json; compare against BENCH_serve.json at equal request
# count and concurrency to measure what sharding buys (req/s, and the
# per-replica hit ratios proving the working set partitioned).
BENCH_SHARD_REPLICAS ?= 3
bench-shard: build
	BENCH_SERVE_REQUESTS=$(BENCH_SERVE_REQUESTS) \
	BENCH_SERVE_CONCURRENCY=$(BENCH_SERVE_CONCURRENCY) \
	FRONT=1 REPLICAS=$(BENCH_SHARD_REPLICAS) \
		./scripts/bench_serve.sh

# bench-quick is the fast smoke slice of the evaluation: the simulator
# engine microbenchmarks, a representative figure pair over one suite on
# a parallel engine (with the stage breakdown printed), and a reduced
# service benchmark.
bench-quick: bench-sim
	$(GO) run ./cmd/idembench -table2 -fig10 -suite PARSEC -workers 8 -timing
	$(MAKE) bench-serve BENCH_SERVE_REQUESTS=400

ci: build check race
