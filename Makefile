# Standard entry points. `make ci` is the full gate: build, format/vet
# checks, and the test suite under the race detector (the campaign
# engine and the experiment engine are the concurrent components — see
# docs/faultengine.md and docs/experiments.md).

GO ?= go
GOFMT ?= gofmt

.PHONY: all build fmt-check vet check test race race-fault bench bench-quick ci

all: build

build:
	$(GO) build ./...

# fmt-check fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt-check vet

test: check
	$(GO) test ./...

# The race detector multiplies runtime; race-fault covers the concurrent
# components quickly (campaign engine, simulator, compile cache,
# experiment engine), race runs the whole tree.
race-fault:
	$(GO) test -race ./internal/fault/... ./internal/machine/... \
		./internal/buildcache/... ./internal/experiments/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-quick is the fast smoke slice of the evaluation: a representative
# figure pair over one suite on a parallel engine, with the stage
# breakdown (compile vs simulate, cache hits) printed.
bench-quick: build
	$(GO) run ./cmd/idembench -table2 -fig10 -suite PARSEC -workers 8 -timing

ci: build check race
